"""Tests for the jagged heuristics JAG-PQ-HEUR and JAG-M-HEUR (§3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import ParameterError
from repro.core.prefix import PrefixSum2D
from repro.jagged import (
    allocate_processors,
    choose_pq,
    default_stripe_count,
    jag_m_heur,
    jag_pq_heur,
)
from repro.theory.bounds import jag_m_guarantee, jag_pq_guarantee

from .conftest import load_matrices, positive_matrices


class TestChoosePQ:
    def test_square(self):
        assert choose_pq(16, 100, 100) == (4, 4)

    def test_prime(self):
        P, Q = choose_pq(13, 100, 100)
        assert P * Q == 13
        assert {P, Q} == {1, 13}

    def test_orientation_fits_matrix(self):
        P, Q = choose_pq(12, 3, 100)  # only 3 rows available
        assert P * Q == 12 and P <= 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            choose_pq(0, 4, 4)


class TestDefaultStripes:
    def test_sqrt_m(self):
        assert default_stripe_count(100, 1000) == 10

    def test_clamped_by_rows(self):
        assert default_stripe_count(100, 4) == 4

    def test_clamped_by_m(self):
        assert default_stripe_count(2, 1000) <= 2


class TestAllocateProcessors:
    @given(
        hnp.arrays(np.int64, st.integers(1, 8), elements=st.integers(0, 100)),
        st.data(),
    )
    @settings(max_examples=60)
    def test_distributes_exactly_m(self, loads, data):
        m = data.draw(st.integers(len(loads), len(loads) + 12))
        q = allocate_processors(loads, m)
        assert q.sum() == m
        assert (q >= 1).all()

    def test_proportionality(self):
        q = allocate_processors(np.array([75, 25]), 8)
        assert q[0] > q[1]
        assert q.sum() == 8

    def test_zero_loads_uniform(self):
        q = allocate_processors(np.zeros(3, dtype=np.int64), 7)
        assert q.sum() == 7
        assert q.max() - q.min() <= 1

    def test_too_few_processors(self):
        with pytest.raises(ParameterError):
            allocate_processors(np.array([1, 1, 1]), 2)


class TestJagPQHeur:
    @given(load_matrices, st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_valid(self, A, m):
        p = jag_pq_heur(A, m)
        assert p.m == m
        p.validate()
        assert p.method == "JAG-PQ-HEUR"

    @pytest.mark.parametrize("orientation", ["hor", "ver", "best"])
    def test_orientations(self, rng, orientation):
        A = rng.integers(1, 9, (12, 8))
        p = jag_pq_heur(A, 6, orientation=orientation)
        p.validate()

    def test_best_at_least_as_good(self, rng):
        for seed in range(5):
            A = np.random.default_rng(seed).integers(1, 50, (16, 10))
            best = jag_pq_heur(A, 6, orientation="best").max_load(A)
            hor = jag_pq_heur(A, 6, orientation="hor").max_load(A)
            ver = jag_pq_heur(A, 6, orientation="ver").max_load(A)
            assert best == min(hor, ver)

    def test_bad_orientation(self, rng):
        with pytest.raises(ParameterError):
            jag_pq_heur(rng.integers(1, 5, (4, 4)), 4, orientation="diagonal")

    def test_pq_mismatch(self, rng):
        with pytest.raises(ParameterError):
            jag_pq_heur(rng.integers(1, 5, (6, 6)), 6, P=2, Q=2)

    @given(positive_matrices, st.data())
    @settings(max_examples=40, deadline=None)
    def test_theorem1_guarantee(self, A, data):
        """On zero-free matrices the heuristic respects Theorem 1."""
        n1, n2 = A.shape
        P = data.draw(st.integers(1, n1 - 1))
        Q = data.draw(st.integers(1, n2 - 1))
        m = P * Q
        pref = PrefixSum2D(A)
        part = jag_pq_heur(pref, m, P=P, Q=Q, orientation="hor")
        ratio = jag_pq_guarantee(pref, P, Q)
        lavg = pref.total / m
        assert part.max_load(pref) <= ratio * lavg + 1e-6


class TestJagMHeur:
    @given(load_matrices, st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_valid(self, A, m):
        p = jag_m_heur(A, m)
        assert p.m == m
        p.validate()

    def test_stripe_count_override(self, rng):
        A = rng.integers(1, 9, (20, 20))
        p = jag_m_heur(A, 12, num_stripes=3, orientation="hor")
        p.validate()
        assert len(p.meta["stripe_cuts"]) == 4

    def test_stripe_count_out_of_range(self, rng):
        A = rng.integers(1, 9, (8, 8))
        with pytest.raises(ParameterError):
            jag_m_heur(A, 4, num_stripes=9, orientation="hor")

    @given(positive_matrices, st.data())
    @settings(max_examples=40, deadline=None)
    def test_theorem3_guarantee(self, A, data):
        n1, n2 = A.shape
        m = data.draw(st.integers(2, 9))
        P = data.draw(st.integers(1, min(n1 - 1, m - 1)))
        pref = PrefixSum2D(A)
        part = jag_m_heur(pref, m, num_stripes=P, orientation="hor")
        ratio = jag_m_guarantee(pref, P, m)
        lavg = pref.total / m
        assert part.max_load(pref) <= ratio * lavg + 1e-6

    def test_beats_pq_heur_at_scale(self):
        """The paper's headline: m-way jagged beats P×Q-way for large m."""
        from repro.instances import peak

        A = peak(128, seed=1)
        m = 400
        assert jag_m_heur(A, m).max_load(A) <= jag_pq_heur(A, m).max_load(A)

    def test_sparse_matrix_with_zero_stripes(self):
        # rows of zeros force the zero-load stripe handling
        A = np.zeros((12, 12), dtype=np.int64)
        A[5, :] = 7
        p = jag_m_heur(A, 6)
        p.validate()
        assert p.m == 6
