"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp


def prefix_of(values) -> np.ndarray:
    """Prefix array of a 1D load list/array."""
    values = np.asarray(values, dtype=np.int64)
    return np.concatenate([[0], np.cumsum(values)]).astype(np.int64)


# 1D load arrays (possibly containing zeros)
load_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 30),
    elements=st.integers(0, 60),
)

# strictly positive 1D load arrays (for Δ-based theory)
positive_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 30),
    elements=st.integers(1, 60),
)

# small 2D load matrices
load_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 10), st.integers(1, 10)),
    elements=st.integers(0, 40),
)

positive_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 10), st.integers(2, 10)),
    elements=st.integers(1, 40),
)

proc_counts = st.integers(1, 9)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep dataset caches inside the test sandbox."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
