"""Tests for the BSP execution simulator."""

import numpy as np
import pytest

from repro import partition_2d
from repro.runtime import BSPSimulator, CostModel, SimulationReport


def snapshots(n=16, steps=4, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.integers(100, 200, (n, n))
    out = []
    for k in range(steps):
        drift = rng.integers(0, 20, (n, n))
        out.append((k * 500, (base + k * drift).astype(np.int64)))
    return out


def jag(pref, m):
    return partition_2d(pref, m, "JAG-M-HEUR")


class TestAccounting:
    def test_report_totals_are_sums(self):
        sim = BSPSimulator(4, jag)
        rep = sim.run(snapshots())
        assert rep.total_time == pytest.approx(
            rep.compute_time + rep.comm_time + rep.migration_time
        )
        assert len(rep.steps) == 4
        assert rep.total_time == pytest.approx(sum(s.total_time for s in rep.steps))

    def test_first_step_never_migrates(self):
        rep = BSPSimulator(4, jag).run(snapshots())
        assert rep.steps[0].migration_time == 0.0
        assert rep.steps[0].repartitioned

    def test_static_strategy_no_migration(self):
        rep = BSPSimulator(4, jag, repartition_every=0).run(snapshots())
        assert rep.migration_time == 0.0
        assert [s.repartitioned for s in rep.steps] == [True, False, False, False]

    def test_periodic_repartitioning(self):
        rep = BSPSimulator(4, jag, repartition_every=2).run(snapshots())
        assert [s.repartitioned for s in rep.steps] == [True, False, True, False]

    def test_compute_time_scales_with_alpha(self):
        snaps = snapshots()
        r1 = BSPSimulator(4, jag, cost=CostModel(alpha=1e-6, beta=0, gamma=0)).run(snaps)
        r2 = BSPSimulator(4, jag, cost=CostModel(alpha=2e-6, beta=0, gamma=0)).run(snaps)
        assert r2.compute_time == pytest.approx(2 * r1.compute_time)

    def test_steps_per_snapshot_multiplies_comp_and_comm(self):
        snaps = snapshots()
        r1 = BSPSimulator(4, jag).run(snaps)
        r3 = BSPSimulator(4, jag).run(snaps, steps_per_snapshot=3)
        assert r3.compute_time == pytest.approx(3 * r1.compute_time)
        assert r3.comm_time == pytest.approx(3 * r1.comm_time)
        assert r3.migration_time == pytest.approx(r1.migration_time)

    def test_imbalance_recorded(self):
        rep = BSPSimulator(4, jag).run(snapshots())
        for s in rep.steps:
            assert s.imbalance >= 0
        assert rep.mean_imbalance == pytest.approx(
            np.mean([s.imbalance for s in rep.steps])
        )

    def test_static_worse_than_dynamic_on_drifting_load(self):
        """Repartitioning pays off when the load drifts (the paper's motivation)."""
        rng = np.random.default_rng(2)
        n = 32
        snaps = []
        for k in range(6):
            A = np.ones((n, n), dtype=np.int64)
            c = 4 + 4 * k  # peak moving across the domain
            A[:, max(0, c - 4) : c + 4] = 500
            snaps.append((k * 500, A))
        cost = CostModel(alpha=1e-6, beta=0.0, gamma=0.0)  # isolate imbalance
        static = BSPSimulator(8, jag, cost=cost, repartition_every=0).run(snaps)
        dynamic = BSPSimulator(8, jag, cost=cost, repartition_every=1).run(snaps)
        assert dynamic.compute_time < static.compute_time

    def test_summary_string(self):
        rep = BSPSimulator(2, jag).run(snapshots(steps=2))
        s = rep.summary()
        assert "steps=2" in s and "mean_imb" in s

    def test_empty_report(self):
        rep = SimulationReport()
        assert rep.total_time == 0.0
        assert rep.mean_imbalance == 0.0


class TestExactImbalance:
    def test_step_imbalance_exact_past_float_precision(self):
        from fractions import Fraction

        from repro.core.partition import Partition
        from repro.core.rectangle import Rect

        # total > 2^62: the old lavg = total / m float path collapsed this
        # tiny positive imbalance to 0.0 (same bug class as
        # Partition.imbalance before PR 5)
        big = (1 << 61) + 2
        A = np.array([[big, big - 1]], dtype=np.int64)
        fixed = Partition(
            [Rect(0, 1, 0, 1), Rect(0, 1, 1, 2)], shape=(1, 2), method="manual"
        )
        rep = BSPSimulator(2, lambda pref, m: fixed).run([(0, A)])
        total = 2 * big - 1
        expected = float(Fraction(2 * big - total, total))
        assert expected > 0.0
        assert rep.steps[0].imbalance == expected
        naive = float(big) / (float(total) / 2) - 1.0
        assert naive == 0.0  # what the old code recorded

    def test_matches_partition_imbalance(self):
        snaps = snapshots()
        parts = []

        def capture(pref, m):
            part = jag(pref, m)
            parts.append((part, pref))
            return part

        rep = BSPSimulator(4, capture).run(snaps)
        for s, (part, pref) in zip(rep.steps, parts):
            assert s.imbalance == part.imbalance(pref)


class TestSubstratePassThrough:
    def test_sparse_stream_never_densifies(self):
        from repro.core.prefix import PrefixSum2D
        from repro.core.sparse import SparsePrefix2D

        rng = np.random.default_rng(3)
        mats = []
        for _ in range(3):
            A = np.zeros((32, 32), dtype=np.int64)
            idx = rng.integers(0, 32, (40, 2))
            A[idx[:, 0], idx[:, 1]] = rng.integers(1, 100, 40)
            mats.append(A)

        seen = []

        def capture(pref, m):
            seen.append(pref)
            return jag(pref, m)

        sparse_rep = BSPSimulator(4, capture).run(
            (k, SparsePrefix2D(A)) for k, A in enumerate(mats)
        )
        # the substrate the partitioner (and all metrics) received is the
        # caller's sparse one — the old hardwired PrefixSum2D(A) densified
        assert all(isinstance(p, SparsePrefix2D) for p in seen)
        assert not any(isinstance(p, PrefixSum2D) for p in seen)
        # and the accounting is bit-identical to the dense run
        dense_rep = BSPSimulator(4, jag).run(list(enumerate(mats)))
        assert sparse_rep.steps == dense_rep.steps


class TestHeterogeneous:
    def test_makespan_uses_speeds(self):
        from repro.core.partition import Partition
        from repro.core.rectangle import Rect

        A = np.array([[6, 2]], dtype=np.int64)
        fixed = Partition(
            [Rect(0, 1, 0, 1), Rect(0, 1, 1, 2)], shape=(1, 2), method="manual"
        )
        cost = CostModel(alpha=1.0, beta=0.0, gamma=0.0)
        homo = BSPSimulator(2, lambda p, m: fixed, cost=cost).run([(0, A)])
        assert homo.steps[0].makespan == 6.0
        # processor 0 is 4x faster: bottleneck moves to processor 1
        het = BSPSimulator(
            2, lambda p, m: fixed, cost=cost, speeds=[4.0, 1.0]
        ).run([(0, A)])
        assert het.steps[0].makespan == 2.0
        assert het.steps[0].compute_time == pytest.approx(2.0)
        # max_load / imbalance stay speed-agnostic (they are load metrics)
        assert het.steps[0].max_load == homo.steps[0].max_load == 6

    def test_hetero_partitioner_end_to_end(self):
        from repro.runtime import hetero_partitioner

        speeds = [1.0, 1.0, 2.0, 4.0]
        sim = BSPSimulator(4, hetero_partitioner(speeds), speeds=speeds)
        rep = sim.run(snapshots(steps=3))
        assert len(rep.steps) == 3
        assert all(s.makespan > 0 for s in rep.steps)

    def test_speeds_validation(self):
        from repro.core.errors import ParameterError

        with pytest.raises(ParameterError):
            BSPSimulator(4, jag, speeds=[1.0, 2.0])  # wrong length
        with pytest.raises(ParameterError):
            BSPSimulator(2, jag, speeds=[1.0, 0.0])  # non-positive

    def test_hetero_partitioner_m_mismatch(self):
        from repro.core.errors import ParameterError
        from repro.core.prefix import PrefixSum2D
        from repro.runtime import hetero_partitioner

        run = hetero_partitioner([1.0, 2.0])
        with pytest.raises(ParameterError):
            run(PrefixSum2D(np.ones((4, 4), dtype=np.int64)), 3)
