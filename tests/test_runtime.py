"""Tests for the BSP execution simulator."""

import numpy as np
import pytest

from repro import partition_2d
from repro.runtime import BSPSimulator, CostModel, SimulationReport


def snapshots(n=16, steps=4, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.integers(100, 200, (n, n))
    out = []
    for k in range(steps):
        drift = rng.integers(0, 20, (n, n))
        out.append((k * 500, (base + k * drift).astype(np.int64)))
    return out


def jag(pref, m):
    return partition_2d(pref, m, "JAG-M-HEUR")


class TestAccounting:
    def test_report_totals_are_sums(self):
        sim = BSPSimulator(4, jag)
        rep = sim.run(snapshots())
        assert rep.total_time == pytest.approx(
            rep.compute_time + rep.comm_time + rep.migration_time
        )
        assert len(rep.steps) == 4
        assert rep.total_time == pytest.approx(sum(s.total_time for s in rep.steps))

    def test_first_step_never_migrates(self):
        rep = BSPSimulator(4, jag).run(snapshots())
        assert rep.steps[0].migration_time == 0.0
        assert rep.steps[0].repartitioned

    def test_static_strategy_no_migration(self):
        rep = BSPSimulator(4, jag, repartition_every=0).run(snapshots())
        assert rep.migration_time == 0.0
        assert [s.repartitioned for s in rep.steps] == [True, False, False, False]

    def test_periodic_repartitioning(self):
        rep = BSPSimulator(4, jag, repartition_every=2).run(snapshots())
        assert [s.repartitioned for s in rep.steps] == [True, False, True, False]

    def test_compute_time_scales_with_alpha(self):
        snaps = snapshots()
        r1 = BSPSimulator(4, jag, cost=CostModel(alpha=1e-6, beta=0, gamma=0)).run(snaps)
        r2 = BSPSimulator(4, jag, cost=CostModel(alpha=2e-6, beta=0, gamma=0)).run(snaps)
        assert r2.compute_time == pytest.approx(2 * r1.compute_time)

    def test_steps_per_snapshot_multiplies_comp_and_comm(self):
        snaps = snapshots()
        r1 = BSPSimulator(4, jag).run(snaps)
        r3 = BSPSimulator(4, jag).run(snaps, steps_per_snapshot=3)
        assert r3.compute_time == pytest.approx(3 * r1.compute_time)
        assert r3.comm_time == pytest.approx(3 * r1.comm_time)
        assert r3.migration_time == pytest.approx(r1.migration_time)

    def test_imbalance_recorded(self):
        rep = BSPSimulator(4, jag).run(snapshots())
        for s in rep.steps:
            assert s.imbalance >= 0
        assert rep.mean_imbalance == pytest.approx(
            np.mean([s.imbalance for s in rep.steps])
        )

    def test_static_worse_than_dynamic_on_drifting_load(self):
        """Repartitioning pays off when the load drifts (the paper's motivation)."""
        rng = np.random.default_rng(2)
        n = 32
        snaps = []
        for k in range(6):
            A = np.ones((n, n), dtype=np.int64)
            c = 4 + 4 * k  # peak moving across the domain
            A[:, max(0, c - 4) : c + 4] = 500
            snaps.append((k * 500, A))
        cost = CostModel(alpha=1e-6, beta=0.0, gamma=0.0)  # isolate imbalance
        static = BSPSimulator(8, jag, cost=cost, repartition_every=0).run(snaps)
        dynamic = BSPSimulator(8, jag, cost=cost, repartition_every=1).run(snaps)
        assert dynamic.compute_time < static.compute_time

    def test_summary_string(self):
        rep = BSPSimulator(2, jag).run(snapshots(steps=2))
        s = rep.summary()
        assert "steps=2" in s and "mean_imb" in s

    def test_empty_report(self):
        rep = SimulationReport()
        assert rep.total_time == 0.0
        assert rep.mean_imbalance == 0.0
