"""Tests for the image-rendering workload generator."""

import numpy as np
import pytest

from repro import partition_2d
from repro.core.errors import ParameterError
from repro.instances import render_scene


class TestRenderScene:
    def test_shape_and_positivity(self):
        A = render_scene(48, seed=1)
        assert A.shape == (48, 48)
        assert A.dtype == np.int64
        assert A.min() >= 1

    def test_deterministic(self):
        np.testing.assert_array_equal(render_scene(32, seed=7), render_scene(32, seed=7))
        assert not np.array_equal(render_scene(32, seed=7), render_scene(32, seed=8))

    def test_empty_scene_is_base_cost(self):
        A = render_scene(16, objects=0, base_cost=5)
        assert (A == 5).all()

    def test_clustering_concentrates_load(self):
        clustered = render_scene(64, cluster=1.0, seed=3)
        spread = render_scene(64, cluster=0.0, seed=3)
        # clustered scenes have heavier hot spots relative to their mean
        assert clustered.max() / clustered.mean() > spread.max() / spread.mean()

    def test_validation(self):
        with pytest.raises(ParameterError):
            render_scene(0)
        with pytest.raises(ParameterError):
            render_scene(16, cluster=1.5)

    def test_partitioning_pipeline(self):
        """The intro's use case: tile the screen to balance shading cost."""
        A = render_scene(96, seed=2)
        uni = partition_2d(A, 16, "RECT-UNIFORM").imbalance(A)
        jag = partition_2d(A, 16, "JAG-M-HEUR").imbalance(A)
        hier = partition_2d(A, 16, "HIER-RELAXED").imbalance(A)
        assert jag < uni and hier < uni
        for name in ("JAG-M-HEUR", "HIER-RELAXED"):
            partition_2d(A, 16, name).validate()
