"""Cross-checks of the four exact 1D algorithms against each other and brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParameterError
from repro.oned import (
    ONED_METHODS,
    bisect_bottleneck,
    dp_bottleneck,
    nicol_bottleneck,
    nicol_plus_bottleneck,
    partition_1d,
)

from .conftest import load_arrays, prefix_of

EXACT = ["dp", "bisect", "nicol", "nicolplus"]


def brute_bottleneck(vals, m):
    n = len(vals)
    k = min(m, n) - 1
    best = None
    for cuts in itertools.combinations(range(1, n), k):
        cc = [0, *cuts, n]
        v = max(vals[a:b].sum() for a, b in zip(cc, cc[1:]))
        best = v if best is None else min(best, v)
    return int(best) if best is not None else int(vals.sum())


class TestExactAgreement:
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=9).map(
            lambda v: np.array(v, dtype=np.int64)
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=80)
    def test_matches_bruteforce(self, vals, m):
        P = prefix_of(vals)
        expected = brute_bottleneck(vals, m)
        assert dp_bottleneck(P, m) == expected
        assert bisect_bottleneck(P, m) == expected
        assert nicol_bottleneck(P, m) == expected
        assert nicol_plus_bottleneck(P, m) == expected

    @given(load_arrays, st.integers(1, 12))
    @settings(max_examples=80)
    def test_all_four_agree(self, vals, m):
        P = prefix_of(vals)
        values = {
            dp_bottleneck(P, m),
            bisect_bottleneck(P, m),
            nicol_bottleneck(P, m),
            nicol_plus_bottleneck(P, m),
        }
        assert len(values) == 1

    def test_large_random_agreement(self, rng):
        vals = rng.integers(1, 1000, 3000)
        P = prefix_of(vals)
        for m in (7, 64, 300):
            b = bisect_bottleneck(P, m)
            assert nicol_bottleneck(P, m) == b
            assert nicol_plus_bottleneck(P, m) == b

    def test_zero_heavy_arrays(self):
        vals = np.array([0, 0, 7, 0, 0, 7, 0])
        P = prefix_of(vals)
        for m in (1, 2, 3, 10):
            b = dp_bottleneck(P, m)
            assert nicol_bottleneck(P, m) == b
            assert nicol_plus_bottleneck(P, m) == b
            assert bisect_bottleneck(P, m) == b

    def test_all_zeros(self):
        P = prefix_of([0, 0, 0])
        for name in EXACT:
            assert partition_1d(np.zeros(3, dtype=np.int64), 2, name).bottleneck == 0

    def test_empty_like_single_cell(self):
        for name in EXACT:
            r = partition_1d(np.array([42]), 3, name)
            assert r.bottleneck == 42


class TestPartition1DApi:
    def test_result_fields(self):
        vals = np.array([3, 1, 4, 1, 5])
        r = partition_1d(vals, 2, "nicolplus")
        assert r.m == 2
        assert r.method == "nicolplus"
        P = prefix_of(vals)
        assert r.loads(P).max() == r.bottleneck
        assert r.imbalance(P) == pytest.approx(r.bottleneck / (vals.sum() / 2) - 1)

    def test_accepts_prefix_input(self):
        P = prefix_of([1, 2, 3])
        r = partition_1d(P, 2, "bisect", is_prefix=True)
        assert r.bottleneck == 3

    def test_accepts_prefixsum1d(self):
        from repro.core.prefix import PrefixSum1D

        r = partition_1d(PrefixSum1D(np.array([1, 2, 3])), 2)
        assert r.bottleneck == 3

    def test_method_normalization(self):
        vals = np.array([1, 2, 3])
        assert partition_1d(vals, 2, "Nicol-Plus").method == "nicolplus"

    def test_unknown_method(self):
        with pytest.raises(ParameterError):
            partition_1d(np.array([1]), 1, "magic")

    def test_nonpositive_m(self):
        with pytest.raises(ParameterError):
            partition_1d(np.array([1]), 0)

    def test_registry_complete(self):
        for name in ("dc", "dc2", "rb", "dp", "bisect", "nicol", "nicolplus"):
            assert name in ONED_METHODS

    @given(load_arrays, st.integers(1, 9), st.sampled_from(EXACT))
    @settings(max_examples=40)
    def test_exact_methods_cuts_achieve_bottleneck(self, vals, m, name):
        r = partition_1d(vals, m, name)
        P = prefix_of(vals)
        assert r.loads(P).max(initial=0) == r.bottleneck
        assert r.cuts[0] == 0 and r.cuts[-1] == len(vals)
