"""Bit-identity contract of the parallel execution layer (S4 failure modes too).

The contract (``repro.parallel.config``): with the layer enabled, every
algorithm produces the *same rectangles* and the *same deterministic op
counters* as the serial reference path — merely computed on more cores.
``proj_hits`` is excluded: cache hits depend on cache temperature, which
differs even between two serial runs (see docs/performance.md).

These are functional tests: a 2-worker pool runs fine on a 1-CPU box.  The
dispatch layer short-circuits to serial on single-CPU machines (pool round
trips cannot win there), so every test that asserts the pool really ran
passes ``force=True`` — the escape hatch that exists precisely for
exercising the pool machinery itself.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.hierarchical.rb import hier_rb
from repro.hierarchical.relaxed import hier_relaxed
from repro.jagged.hetero import jag_hetero
from repro.jagged.m_heur import jag_m_heur
from repro.jagged.pq_heur import jag_pq_heur
from repro.parallel import (
    effective_workers,
    get_pool,
    live_segments,
    pmap,
    pmap_batched,
    pool_workers,
    shutdown_pool,
    use_parallel,
)
from repro.perf.counters import op_counters

#: deterministic counters in the identity contract (proj_hits is not)
_EXCLUDED_COUNTERS = {"proj_hits"}

SPEEDS = np.array([1.0, 1.0, 2.0, 3.0, 1.5, 1.0, 2.0, 1.0])

#: name -> callable(pref) covering every parallel backend: stripe-parallel
#: jagged phase 2 (both orientations), hetero stripes, subtree-parallel trees
CASES = {
    "jag_pq_heur": lambda pref: jag_pq_heur(pref, 12),
    "jag_m_heur": lambda pref: jag_m_heur(pref, 13),
    "jag_hetero": lambda pref: jag_hetero(pref, SPEEDS),
    "hier_rb": lambda pref: hier_rb(pref, 16),
    "hier_rb_hor": lambda pref: hier_rb(pref, 11, "hor"),
    "hier_relaxed": lambda pref: hier_relaxed(pref, 16),
}


def _rects(part):
    return [(r.r0, r.r1, r.c0, r.c1) for r in part.rects]


def _contract_ops(ops):
    return {k: v for k, v in ops.items() if k not in _EXCLUDED_COUNTERS}


@pytest.fixture()
def force_dispatch(monkeypatch):
    """Drop the work-size threshold so tiny test instances dispatch."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_CELLS", "0")


def _instance(seed: int, shape=(120, 90)) -> PrefixSum2D:
    rng = np.random.default_rng(seed)
    return PrefixSum2D(rng.integers(0, 100, size=shape))


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("seed", [7, 21])
def test_bit_identity_two_workers(force_dispatch, name, seed):
    """Rectangles and deterministic op counters match the serial path."""
    pref = _instance(seed)
    fn = CASES[name]
    with op_counters() as serial_ops:
        serial = _rects(fn(pref))
    with use_parallel(True, workers=2, force=True):
        with op_counters() as par_ops:
            par = _rects(fn(pref))
        assert pool_workers() == 2  # the pool really ran this
    assert par == serial
    assert _contract_ops(par_ops) == _contract_ops(serial_ops)


def test_one_worker_is_exactly_the_serial_path(force_dispatch):
    """workers=1 short-circuits: no pool is spawned, results identical."""
    pref = _instance(3)
    serial = {n: _rects(fn(pref)) for n, fn in CASES.items()}
    shutdown_pool()
    with use_parallel(True, workers=1):
        assert effective_workers() == 0
        assert get_pool() is None
        for n, fn in CASES.items():
            assert _rects(fn(pref)) == serial[n]
        assert pool_workers() == 0  # never spawned


def test_disabled_layer_never_dispatches(force_dispatch):
    """Default-off: without use_parallel no pool appears even at threshold 0."""
    shutdown_pool()
    pref = _instance(5, shape=(64, 64))
    _rects(jag_m_heur(pref, 9))
    assert pool_workers() == 0


def _dev_shm_leftovers() -> list[str]:
    return glob.glob("/dev/shm/repro-pool-*")


def test_no_segment_leak_after_shutdown(force_dispatch):
    """Normal lifecycle: exported segments are unlinked by shutdown_pool."""
    pref = _instance(11)
    with use_parallel(True, workers=2, force=True):
        _rects(hier_rb(pref, 16))
    shutdown_pool()
    assert live_segments() == []
    assert _dev_shm_leftovers() == []


def _boom(x):
    raise RuntimeError(f"task failure {x}")


def test_no_segment_leak_after_worker_exception(force_dispatch):
    """A task raising in a worker must not leak segments after shutdown."""
    pref = _instance(13)
    with use_parallel(True, workers=2, force=True):
        _rects(jag_pq_heur(pref, 12))  # exports a segment
        with pytest.raises(RuntimeError, match="task failure"):
            pmap(_boom, [1, 2, 3])
    shutdown_pool()
    assert live_segments() == []
    assert _dev_shm_leftovers() == []


def test_pmap_orders_results(force_dispatch):
    """pmap returns results in item order — the basis of identical reductions."""
    with use_parallel(True, workers=2, force=True):
        assert pmap(abs, [-5, 3, -1, 0, -2]) == [5, 3, 1, 0, 2]
    shutdown_pool()


def test_pmap_batched_orders_results(force_dispatch):
    """pmap_batched reassembles chunk results in item order."""
    items = list(range(-20, 20))
    with use_parallel(True, workers=2, force=True):
        assert pmap_batched(abs, items) == [abs(x) for x in items]
        assert pmap_batched(abs, items, chunks=3) == [abs(x) for x in items]
        assert pool_workers() == 2  # the pool really ran this
    shutdown_pool()


def test_pmap_batched_merges_op_counters(force_dispatch):
    """Parent op-counter contexts see the same counts as the serial loop."""
    pref = _instance(17, shape=(48, 48))
    payloads = [(pref, m) for m in (4, 5, 6, 7, 8, 9)]
    with op_counters() as serial_ops:
        serial = [_hier_cell(p) for p in payloads]
    with use_parallel(True, workers=2, force=True):
        with op_counters() as par_ops:
            par = pmap_batched(_hier_cell, payloads)
    shutdown_pool()
    assert par == serial
    assert _contract_ops(par_ops) == _contract_ops(serial_ops)


def _hier_cell(payload):
    pref, m = payload
    return _rects(hier_rb(pref, m))


def test_single_cpu_short_circuits_to_serial(force_dispatch, monkeypatch):
    """On a 1-CPU box dispatch falls through to serial: no pool round trips.

    The spawn-pool round trips cannot buy parallelism on one core, so
    ``effective_workers()`` reports 0 whatever worker count is configured,
    no pool is created, and results are the serial results.
    """
    shutdown_pool()
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    pref = _instance(19)
    serial = {n: _rects(fn(pref)) for n, fn in CASES.items()}
    with use_parallel(True, workers=2):
        assert effective_workers() == 0
        assert get_pool() is None
        for n, fn in CASES.items():
            assert _rects(fn(pref)) == serial[n]
        assert pool_workers() == 0  # never spawned
        assert pmap_batched(abs, [-1, 2, -3]) == [1, 2, 3]  # serial fallback
        assert pool_workers() == 0


def test_single_cpu_force_overrides(force_dispatch, monkeypatch):
    """force=True bypasses the 1-CPU short-circuit (pool-machinery tests)."""
    shutdown_pool()
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    with use_parallel(True, workers=2, force=True):
        assert effective_workers() == 2
    shutdown_pool()
