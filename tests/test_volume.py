"""Tests for the 3D rectangular-volume extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import InvalidPartitionError, ParameterError
from repro.volume import (
    Box,
    Partition3D,
    PrefixSum3D,
    as_load_volume,
    choose_pqr,
    vol_hier_rb,
    vol_jag_m_heur,
    vol_uniform,
)

tiny_volumes = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)),
    elements=st.integers(0, 20),
)


class TestPrefix3D:
    def test_box_loads(self, rng):
        A = rng.integers(0, 20, (5, 6, 7))
        pf = PrefixSum3D(A)
        assert pf.total == A.sum()
        assert pf.shape == (5, 6, 7)
        for _ in range(25):
            a0, a1 = sorted(rng.integers(0, 6, 2))
            b0, b1 = sorted(rng.integers(0, 7, 2))
            c0, c1 = sorted(rng.integers(0, 8, 2))
            assert pf.load(a0, a1, b0, b1, c0, c1) == A[a0:a1, b0:b1, c0:c1].sum()

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_axis_prefix(self, rng, axis):
        A = rng.integers(0, 20, (4, 5, 6))
        pf = PrefixSum3D(A)
        others = [d for d in range(3) if d != axis]
        win = [(1, A.shape[others[0]] - 1), (0, A.shape[others[1]])]
        p = pf.axis_prefix(axis, win[0][0], win[0][1], win[1][0], win[1][1])
        sl = [slice(None)] * 3
        sl[others[0]] = slice(win[0][0], win[0][1])
        sl[others[1]] = slice(win[1][0], win[1][1])
        np.testing.assert_array_equal(np.diff(p), A[tuple(sl)].sum(axis=tuple(others)))

    def test_axis_prefix_bad_axis(self, rng):
        pf = PrefixSum3D(rng.integers(0, 5, (3, 3, 3)))
        with pytest.raises(ParameterError):
            pf.axis_prefix(3, 0, 1, 0, 1)

    def test_slab_matrix_is_2d_prefix(self, rng):
        from repro.core.prefix import PrefixSum2D

        A = rng.integers(0, 20, (6, 5, 4))
        pf = PrefixSum3D(A)
        M = pf.slab_matrix(0, 2, 5)
        p2 = PrefixSum2D(M, is_prefix=True)
        assert p2.total == A[2:5].sum()
        assert p2.load(1, 4, 0, 2) == A[2:5, 1:4, 0:2].sum()

    def test_max_element(self, rng):
        A = rng.integers(0, 20, (4, 4, 4))
        assert PrefixSum3D(A).max_element() == A.max()

    def test_rejects_2d(self, rng):
        with pytest.raises(ParameterError):
            as_load_volume(rng.integers(0, 5, (3, 3)))

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            as_load_volume(np.full((2, 2, 2), -1))


class TestBox:
    def test_geometry(self):
        b = Box(0, 2, 1, 4, 2, 5)
        assert b.extents == (2, 3, 3)
        assert b.volume == 18
        assert not b.is_empty
        assert b.contains(1, 3, 4)
        assert not b.contains(2, 3, 4)

    def test_malformed(self):
        with pytest.raises(ValueError):
            Box(2, 1, 0, 1, 0, 1)

    def test_intersect(self):
        a = Box(0, 4, 0, 4, 0, 4)
        b = Box(2, 6, 2, 6, 2, 6)
        assert a.intersect(b) == Box(2, 4, 2, 4, 2, 4)
        assert a.overlaps(b)
        assert a.intersect(Box(4, 6, 0, 4, 0, 4)) is None

    def test_surface_area(self):
        # interior 2x2x2 cube in a 10^3 grid: 6 faces of 4 cells each
        assert Box(4, 6, 4, 6, 4, 6).surface_area(10, 10, 10) == 24
        # the full grid has no exterior communication
        assert Box(0, 10, 0, 10, 0, 10).surface_area(10, 10, 10) == 0
        assert Box(0, 0, 0, 0, 0, 0).surface_area(10, 10, 10) == 0


class TestPartition3D:
    def two_way(self):
        return Partition3D(
            [Box(0, 2, 0, 4, 0, 4), Box(2, 4, 0, 4, 0, 4)], (4, 4, 4)
        )

    def test_valid(self):
        self.two_way().validate()
        assert self.two_way().is_valid()

    def test_overlap_detected(self):
        p = Partition3D(
            [Box(0, 3, 0, 4, 0, 4), Box(2, 4, 0, 4, 0, 4)], (4, 4, 4)
        )
        with pytest.raises(InvalidPartitionError):
            p.validate()

    def test_gap_detected(self):
        p = Partition3D(
            [Box(0, 2, 0, 4, 0, 4), Box(2, 4, 0, 4, 0, 3)], (4, 4, 4)
        )
        with pytest.raises(InvalidPartitionError):
            p.validate()

    def test_out_of_bounds(self):
        p = Partition3D([Box(0, 5, 0, 4, 0, 4)], (4, 4, 4))
        with pytest.raises(InvalidPartitionError):
            p.validate()

    def test_loads_and_owner(self, rng):
        A = rng.integers(0, 9, (4, 4, 4))
        pf = PrefixSum3D(A)
        p = self.two_way()
        np.testing.assert_array_equal(
            p.loads(pf), [A[0:2].sum(), A[2:4].sum()]
        )
        assert p.owner_of(1, 0, 0) == 0
        assert p.owner_of(3, 2, 1) == 1
        with pytest.raises(ParameterError):
            p.owner_of(4, 0, 0)


class TestChoosePQR:
    def test_cube(self):
        assert sorted(choose_pqr(64, (100, 100, 100))) == [4, 4, 4]

    def test_fits_shape(self):
        dims = choose_pqr(64, (2, 100, 100))
        assert np.prod(dims) == 64
        assert dims[0] <= 2

    def test_prime(self):
        dims = choose_pqr(13, (20, 20, 20))
        assert np.prod(dims) == 13

    def test_nonpositive(self):
        with pytest.raises(ParameterError):
            choose_pqr(0, (4, 4, 4))


@pytest.mark.parametrize("algo", [vol_uniform, vol_jag_m_heur, vol_hier_rb])
class TestVolumeAlgorithms:
    @given(A=tiny_volumes, m=st.integers(1, 9))
    @settings(max_examples=30, deadline=None)
    def test_valid(self, algo, A, m):
        pf = PrefixSum3D(A)
        p = algo(pf, m)
        assert p.m == m
        p.validate()
        lb = max(-(-int(A.sum()) // m), int(A.max()))
        assert p.max_load(pf) >= lb or A.sum() == 0

    def test_accepts_raw_array(self, algo, rng):
        A = rng.integers(1, 9, (6, 6, 6))
        p = algo(A, 4)
        p.validate()


class TestVolumeQuality:
    def test_load_aware_beats_uniform_on_blob(self):
        i, j, k = np.meshgrid(*[np.arange(24)] * 3, indexing="ij")
        A = (
            100 + 4000 * np.exp(-((i - 6) ** 2 + (j - 16) ** 2 + (k - 12) ** 2) / 40)
        ).astype(np.int64)
        pf = PrefixSum3D(A)
        uni = vol_uniform(pf, 27).imbalance(pf)
        jag = vol_jag_m_heur(pf, 27).imbalance(pf)
        rb = vol_hier_rb(pf, 27).imbalance(pf)
        assert jag < uni and rb < uni

    def test_jag_slab_override(self, rng):
        A = rng.integers(1, 9, (12, 12, 12))
        p = vol_jag_m_heur(A, 8, num_slabs=2, axis=1)
        p.validate()
        assert len(p.meta["slab_cuts"]) == 3

    def test_bad_axis(self, rng):
        with pytest.raises(ParameterError):
            vol_jag_m_heur(rng.integers(1, 5, (4, 4, 4)), 4, axis=3)

    def test_uniform_dims_mismatch(self, rng):
        with pytest.raises(ParameterError):
            vol_uniform(rng.integers(1, 5, (4, 4, 4)), 8, dims=(2, 2, 3))

    def test_communication_volume_reference(self, rng):
        A = rng.integers(1, 5, (6, 6, 6))
        p = vol_uniform(A, 8, dims=(2, 2, 2))  # 3x3x3 blocks
        # each of the three mid-planes crosses 36 faces
        assert p.communication_volume() == 3 * 36
