"""Tests for bounds, communication volume and migration volume."""

import numpy as np
import pytest

from repro.core.metrics import (
    communication_volume,
    load_imbalance,
    lower_bound,
    max_boundary,
    migration_volume,
    upper_bound,
)
from repro.core.partition import Partition
from repro.core.prefix import PrefixSum2D
from repro.core.rectangle import Rect
from repro.rectilinear import rect_uniform


def owner_cross_edges(owner: np.ndarray) -> int:
    """Reference communication volume: count grid edges crossing owners."""
    horiz = (owner[:, 1:] != owner[:, :-1]).sum()
    vert = (owner[1:, :] != owner[:-1, :]).sum()
    return int(horiz + vert)


class TestBounds:
    def test_lower_bound(self):
        A = np.array([[7, 1], [1, 1]])
        assert lower_bound(A, 2) == 7  # max element dominates
        assert lower_bound(A, 1) == 10
        assert lower_bound(np.array([[3, 3], [3, 3]]), 5) == 3

    def test_upper_bound_ge_lower(self, rng):
        for _ in range(10):
            A = rng.integers(0, 20, (5, 5))
            for m in (1, 3, 7):
                assert upper_bound(A, m) >= lower_bound(A, m)

    def test_load_imbalance_alias(self, rng):
        A = rng.integers(1, 9, (4, 4))
        p = rect_uniform(A, 4)
        assert load_imbalance(A, p) == p.imbalance(A)

    def test_imbalance_exact_past_float_precision(self):
        from fractions import Fraction

        # total load > 2^60: the naive Lmax/(total/m) - 1 double-rounds
        # through float and collapses this tiny positive imbalance to 0.0
        big = (1 << 61) + 2
        A = np.array([[big, big - 1]], dtype=np.int64)
        p = Partition(
            [Rect(0, 1, 0, 1), Rect(0, 1, 1, 2)], shape=(1, 2), method="manual"
        )
        total = 2 * big - 1
        expected = float(Fraction(big * 2 - total, total))  # = 1/total
        assert expected > 0.0
        assert p.imbalance(A) == expected
        assert load_imbalance(A, p) == expected
        naive = float(big) / (float(total) / 2) - 1.0
        assert naive == 0.0  # the bug this pins against

    def test_imbalance_zero_total(self):
        A = np.zeros((2, 2), dtype=np.int64)
        p = rect_uniform(A, 4)
        assert p.imbalance(A) == 0.0


class TestCommunication:
    @pytest.mark.parametrize("m", [1, 4, 6, 9])
    def test_matches_owner_map(self, rng, m):
        A = rng.integers(1, 9, (12, 12))
        p = rect_uniform(A, m)
        assert communication_volume(p) == owner_cross_edges(p.owner_map())

    def test_single_rect_no_comm(self, rng):
        A = rng.integers(1, 9, (5, 5))
        assert communication_volume(rect_uniform(A, 1)) == 0
        assert max_boundary(rect_uniform(A, 1)) == 0

    def test_max_boundary(self, rng):
        A = rng.integers(1, 9, (8, 8))
        p = rect_uniform(A, 4)  # 2x2 grid of 4x4 blocks
        # each block touches two interior sides of length 4
        assert max_boundary(p) == 8

    def test_empty_partition(self):
        assert max_boundary(Partition([], (3, 3))) == 0


class TestMigration:
    def test_identical_partitions_zero(self, rng):
        A = rng.integers(1, 9, (8, 8))
        p = rect_uniform(A, 4)
        assert migration_volume(p, p, A) == 0

    def test_disjoint_swap_full(self, rng):
        A = rng.integers(1, 9, (4, 4))
        p1 = Partition([Rect(0, 2, 0, 4), Rect(2, 4, 0, 4)], (4, 4))
        p2 = Partition([Rect(2, 4, 0, 4), Rect(0, 2, 0, 4)], (4, 4))
        assert migration_volume(p1, p2, A) == A.sum()

    def test_matches_owner_map_reference(self, rng):
        A = rng.integers(1, 9, (12, 12))
        pf = PrefixSum2D(A)
        p1 = rect_uniform(pf, 4)
        p2 = rect_uniform(pf, 4, P=4, Q=1)
        moved_ref = int(A[p1.owner_map() != p2.owner_map()].sum())
        assert migration_volume(p1, p2, pf) == moved_ref

    def test_shape_mismatch(self, rng):
        A = rng.integers(1, 9, (4, 4))
        p1 = rect_uniform(A, 2)
        p2 = rect_uniform(rng.integers(1, 9, (4, 6)), 2)
        with pytest.raises(ValueError):
            migration_volume(p1, p2, A)

    def test_m_mismatch_raises(self, rng):
        # owner identity is positional: truncating to min(m, m') silently
        # misaccounted the dropped processors' load (the pinned bug)
        A = rng.integers(1, 9, (8, 8))
        p2 = rect_uniform(A, 2)
        p4 = rect_uniform(A, 4)
        with pytest.raises(ValueError, match="processor count"):
            migration_volume(p2, p4, A)
        with pytest.raises(ValueError, match="processor count"):
            migration_volume(p4, p2, A)

    def test_volume_bounded_by_total(self, rng):
        from repro import partition_2d

        A = rng.integers(0, 20, (16, 16))
        total = int(A.sum())
        parts = [
            rect_uniform(A, 4),
            rect_uniform(A, 4, P=4, Q=1),
            partition_2d(A, 4, "JAG-M-HEUR"),
            partition_2d(A, 4, "HIER-RB"),
        ]
        for p1 in parts:
            for p2 in parts:
                vol = migration_volume(p1, p2, A)
                assert 0 <= vol <= total
                # symmetric: the moved load is the same in both directions
                assert vol == migration_volume(p2, p1, A)
            assert migration_volume(p1, p1, A) == 0

    def test_substrate_equality(self, rng):
        from repro.core.sparse import SparsePrefix2D

        A = np.zeros((16, 16), dtype=np.int64)
        idx = rng.integers(0, 16, (30, 2))
        A[idx[:, 0], idx[:, 1]] = rng.integers(1, 50, 30)
        p1 = rect_uniform(A, 4)
        p2 = rect_uniform(A, 4, P=4, Q=1)
        raw = migration_volume(p1, p2, A)
        assert migration_volume(p1, p2, PrefixSum2D(A)) == raw
        assert migration_volume(p1, p2, SparsePrefix2D(A)) == raw


class TestNeighborCounts:
    def test_grid_adjacency(self, rng):
        from repro.core.metrics import neighbor_counts

        A = rng.integers(1, 9, (8, 8))
        p = rect_uniform(A, 16)  # 4x4 grid
        counts = neighbor_counts(p)
        # corners 2, edges 3, interior 4
        assert sorted(counts.tolist()) == sorted([2] * 4 + [3] * 8 + [4] * 4)

    def test_single_rect_no_neighbors(self, rng):
        from repro.core.metrics import neighbor_counts

        A = rng.integers(1, 9, (4, 4))
        assert neighbor_counts(rect_uniform(A, 1)).tolist() == [0]

    def test_empty_rects_have_no_neighbors(self, rng):
        from repro.core.metrics import neighbor_counts
        from repro import partition_2d

        A = np.ones((2, 2), dtype=np.int64)
        p = partition_2d(A, 6, "HIER-RB")  # idle processors present
        counts = neighbor_counts(p)
        areas = np.array([r.area for r in p.rects])
        assert (counts[areas == 0] == 0).all()

    def test_symmetric_relation(self, rng):
        from repro.core.metrics import neighbor_counts
        from repro import partition_2d

        A = rng.integers(1, 9, (12, 12))
        p = partition_2d(A, 7, "JAG-M-HEUR")
        counts = neighbor_counts(p)
        # total adjacency degree is even (each pair counted twice)
        assert counts.sum() % 2 == 0

    def test_latency_term_increases_comm(self, rng):
        from repro import partition_2d
        from repro.runtime import BSPSimulator, CostModel

        A = rng.integers(1, 9, (16, 16)).astype(np.int64)
        jag = lambda pref, m: partition_2d(pref, m, "JAG-M-HEUR")
        no_lat = BSPSimulator(4, jag, cost=CostModel(latency=0.0)).run([(0, A)])
        with_lat = BSPSimulator(4, jag, cost=CostModel(latency=1e-3)).run([(0, A)])
        assert with_lat.comm_time > no_lat.comm_time
