"""Unit tests for the Partition container and its validity test (§2.1)."""

import numpy as np
import pytest

from repro.core.errors import InvalidPartitionError, ParameterError
from repro.core.partition import Partition
from repro.core.prefix import PrefixSum2D
from repro.core.rectangle import Rect


def three_way(shape=(6, 8)):
    n1, n2 = shape
    return Partition(
        [Rect(0, n1, 0, 3), Rect(0, 2, 3, n2), Rect(2, n1, 3, n2)], shape
    )


class TestValidity:
    def test_valid_partition(self):
        three_way().validate()
        assert three_way().is_valid()

    @pytest.mark.parametrize("method", ["paint", "pairwise"])
    def test_overlap_detected(self, method):
        p = Partition([Rect(0, 6, 0, 4), Rect(0, 6, 3, 8), Rect(0, 0, 0, 0)], (6, 8))
        with pytest.raises(InvalidPartitionError):
            p.validate(method=method)

    @pytest.mark.parametrize("method", ["paint", "pairwise"])
    def test_gap_detected(self, method):
        p = Partition([Rect(0, 6, 0, 4), Rect(0, 5, 4, 8)], (6, 8))
        with pytest.raises(InvalidPartitionError):
            p.validate(method=method)

    def test_out_of_bounds_detected(self):
        p = Partition([Rect(0, 7, 0, 8)], (6, 8))
        with pytest.raises(InvalidPartitionError):
            p.validate()

    def test_empty_rects_ignored(self):
        p = Partition([Rect(0, 6, 0, 8), Rect(0, 0, 0, 0), Rect(3, 3, 1, 5)], (6, 8))
        p.validate()

    def test_no_rects(self):
        with pytest.raises(InvalidPartitionError):
            Partition([], (3, 3)).validate()

    def test_unknown_method(self):
        with pytest.raises(ParameterError):
            three_way().validate(method="nope")

    def test_pairwise_chunking(self, rng):
        # many thin valid stripes exercise the chunked pairwise path
        n = 700
        rects = [Rect(i, i + 1, 0, 4) for i in range(n)]
        Partition(rects, (n, 4))._validate_pairwise(
            np.array([(r.r0, r.r1, r.c0, r.c1) for r in rects]), chunk=128
        )


class TestLoadsAndOwnership:
    def test_loads(self, rng):
        A = rng.integers(0, 30, (6, 8))
        p = three_way()
        pf = PrefixSum2D(A)
        expected = [
            A[0:6, 0:3].sum(),
            A[0:2, 3:8].sum(),
            A[2:6, 3:8].sum(),
        ]
        np.testing.assert_array_equal(p.loads(pf), expected)
        assert p.max_load(A) == max(expected)
        assert p.imbalance(A) == pytest.approx(max(expected) / (A.sum() / 3) - 1)

    def test_owner_map_and_owner_of_agree(self, rng):
        p = three_way()
        owner = p.owner_map()
        for i in range(6):
            for j in range(8):
                assert p.owner_of(i, j) == owner[i, j]

    def test_owner_of_out_of_range(self):
        with pytest.raises(ParameterError):
            three_way().owner_of(6, 0)

    def test_owner_of_uncovered(self):
        p = Partition([Rect(0, 1, 0, 1)], (2, 2))
        with pytest.raises(InvalidPartitionError):
            p.owner_of(1, 1)

    def test_indexer_used(self):
        calls = []

        def fake(i, j):
            calls.append((i, j))
            return 0

        p = Partition([Rect(0, 2, 0, 2)], (2, 2), indexer=fake)
        assert p.owner_of(1, 1) == 0
        assert calls == [(1, 1)]

    def test_container_protocol(self):
        p = three_way()
        assert p.m == len(p) == 3
        assert list(iter(p))[0] == p[0]
        assert "Partition" in repr(p) or p.method in repr(p)

    def test_transpose(self, rng):
        A = rng.integers(0, 30, (6, 8))
        p = three_way()
        pt = p.transpose()
        assert pt.shape == (8, 6)
        pt.validate()
        np.testing.assert_array_equal(
            np.sort(pt.loads(PrefixSum2D(A.T))), np.sort(p.loads(PrefixSum2D(A)))
        )
        # indexer transposes too
        assert pt.owner_of(7, 0) == p.owner_of(0, 7)

    def test_with_method(self):
        assert three_way().with_method("X").method == "X"

    def test_zero_total_imbalance(self):
        A = np.zeros((6, 8), dtype=np.int64)
        assert three_way().imbalance(A) == 0.0
