"""Tests for the §5 extension experiments."""

import numpy as np
import pytest

from repro.experiments.extensions import ALL_EXTENSIONS

from .test_experiments import TINY


@pytest.mark.parametrize("ext", sorted(ALL_EXTENSIONS))
def test_every_extension_runs_tiny(ext):
    res = ALL_EXTENSIONS[ext](TINY)
    assert res.fig == ext
    assert res.series
    for pts in res.series.values():
        assert pts
        assert all(np.isfinite(y) for _, y in pts)


class TestExtensionSemantics:
    def test_ext1_has_all_heuristics(self):
        res = ALL_EXTENSIONS["ext1"](TINY)
        assert "JAG-M-HEUR" in res.series and "HIER-RB" in res.series
        # communication volumes are positive for m > 1
        for pts in res.series.values():
            assert all(y > 0 for x, y in pts if x > 1)

    def test_ext2_migration_monotone(self):
        res = ALL_EXTENSIONS["ext2"](TINY)
        mig = dict(res.series["migrated fraction"])
        ths = sorted(mig)
        for a, b in zip(ths, ths[1:]):
            assert mig[b] <= mig[a] + 1e-9

    def test_ext3_auto_dominates_sqrt(self):
        res = ALL_EXTENSIONS["ext3"](TINY)
        sqrt_ = dict(res.series["sqrt"])
        auto = dict(res.series["auto"])
        for m in sqrt_:
            assert auto[m] <= sqrt_[m] + 1e-9

    def test_ext4_volume_series(self):
        res = ALL_EXTENSIONS["ext4"](TINY)
        assert set(res.series) == {"VOL-UNIFORM", "VOL-JAG-M-HEUR", "VOL-HIER-RB"}
