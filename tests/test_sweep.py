"""Tests for the sweep engine: bit-identity, order invariance, poisoning.

The sweep contract is the repo's strongest: for every algorithm and every
sweep order, warm-started results equal cold-call results — same rectangle
sets, same bottlenecks.  These tests enforce it on randomized instances,
and additionally verify that the validated bound store makes installing a
*wrong* ("poisoned") bound through the public API impossible: every
recording method checks the monotonicity laws and raises
:class:`~repro.sweep.state.SweepInvariantError` on contradiction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.core.registry import partition_2d
from repro.instances import uniform
from repro.sweep import (
    SweepInvariantError,
    SweepResult,
    SweepState,
    current,
    sweep,
    sweep_active,
    use_sweep,
)

ALGOS = ["JAG-PQ-HEUR", "JAG-M-HEUR", "JAG-PQ-OPT", "JAG-M-OPT", "RECT-NICOL"]
M_VALUES = [4, 6, 12, 20, 36]


def _rects(part) -> list[tuple[int, int, int, int]]:
    return sorted((r.r0, r.r1, r.c0, r.c1) for r in part.rects)


def _cold(A, name, m):
    # a fresh prefix per call: no shared cache, no sweep context
    return partition_2d(PrefixSum2D(A), m, name)


@pytest.fixture(scope="module")
def A():
    return uniform(40, 1.3, seed=3)


# ---------------------------------------------------------------------------
# Bit-identity of sweep() vs per-m cold calls


@pytest.mark.parametrize(
    "order", ["ascending", "descending", "shuffled"], ids=lambda o: f"order={o}"
)
def test_sweep_bit_identical_to_cold_calls(A, order):
    ms = sorted(M_VALUES)
    if order == "descending":
        ms = ms[::-1]
    elif order == "shuffled":
        ms = list(np.random.default_rng(7).permutation(ms))
    res = sweep(A, ALGOS, ms)
    for name in ALGOS:
        for m in ms:
            cold = _cold(A, name, int(m))
            warm = res[(name, int(m))]
            assert _rects(warm) == _rects(cold), (name, m)
            pc = PrefixSum2D(A)
            assert warm.max_load(pc) == cold.max_load(pc), (name, m)


def test_use_sweep_call_order_invariance(A):
    # exact solvers first vs heuristics first: facts flow differently, but
    # every result must match the cold baseline either way
    pref1, pref2 = PrefixSum2D(A), PrefixSum2D(A)
    out1, out2 = {}, {}
    with use_sweep():
        for name in ALGOS:
            for m in M_VALUES:
                out1[(name, m)] = partition_2d(pref1, m, name)
    with use_sweep():
        for name in reversed(ALGOS):
            for m in reversed(M_VALUES):
                out2[(name, m)] = partition_2d(pref2, m, name)
    for key in out1:
        assert _rects(out1[key]) == _rects(out2[key]) == _rects(_cold(A, *key)), key


def test_sweep_transparent_for_hierarchical(A):
    # algorithms with no sweep hooks run unchanged inside a sweep context
    res = sweep(A, ["HIER-RB", "HIER-RELAXED"], [8, 16])
    for name in ("HIER-RB", "HIER-RELAXED"):
        for m in (8, 16):
            assert _rects(res[(name, m)]) == _rects(_cold(A, name, m))


def test_sweep_result_api(A):
    res = sweep(A, "JAG-M-HEUR", [4, 9])
    assert isinstance(res, SweepResult)
    assert len(res) == 2
    assert res[("jag-m-heur", 4)] is res.parts[("JAG-M-HEUR", 4)]
    bots = res.bottlenecks()
    for key, part in res:
        assert bots[key] == part.max_load(res.pref)


def test_sweep_context_is_scoped():
    assert not sweep_active() and current() is None
    with use_sweep() as state:
        assert sweep_active() and current() is state
        with use_sweep() as inner:
            assert current() is inner  # innermost wins
        assert current() is state
    assert not sweep_active() and current() is None


# ---------------------------------------------------------------------------
# Warm starts actually fire (not just stay transparent)


def test_exact_hit_short_circuits_second_call(A):
    from repro.jagged.m_opt import jag_m_opt_bottleneck

    pref = PrefixSum2D(A)
    with use_sweep() as state:
        b1 = jag_m_opt_bottleneck(pref, 12)
        assert state.mono_bounds(pref, "jag_m", 12)[0] == b1
        b2 = jag_m_opt_bottleneck(pref, 12)
    assert b1 == b2 == jag_m_opt_bottleneck(PrefixSum2D(A), 12)


def test_heuristic_witness_recorded_and_consumed(A):
    pref = PrefixSum2D(A)
    with use_sweep() as state:
        heur = partition_2d(pref, 16, "JAG-M-HEUR-HOR")
        wit = state.mono_witness(pref, "jag_m", 16)
        assert wit is not None and wit == heur.max_load(pref)
        exact = partition_2d(pref, 16, "JAG-M-OPT-HOR")
        opt = state.mono_bounds(pref, "jag_m", 16)[0]
        assert opt is not None and opt == exact.max_load(pref) <= wit


def test_monotone_bound_transfer_across_m(A):
    from repro.jagged.m_opt import jag_m_opt_bottleneck

    pref = PrefixSum2D(A)
    with use_sweep() as state:
        b_large = jag_m_opt_bottleneck(pref, 20)
        _, lb, _ = state.mono_bounds(pref, "jag_m", 10)
        assert lb is not None and lb >= b_large  # transfers downward in m
        b_small = jag_m_opt_bottleneck(pref, 10)
        assert b_small >= b_large
        _, _, ub = state.mono_bounds(pref, "jag_m", 40)
        assert ub is not None and ub <= b_small  # feasibility transfers up


def test_cross_class_grid_fact_bounds_m_way():
    state = SweepState()
    obj = object()
    state.record_grid_ub(obj, 3, 4, 120)
    # a 3×4-way partition is a 12-way jagged partition: ub for every m >= 12
    assert state.mono_bounds(obj, "jag_m", 12)[2] == 120
    assert state.mono_bounds(obj, "jag_m", 30)[2] == 120
    assert state.mono_bounds(obj, "jag_m", 11)[2] is None
    # ... and the m-way optimum at m = P·Q lower-bounds the grid class
    state.record_mono_opt(obj, "jag_m", 12, 100)
    assert state.grid_bounds(obj, 3, 4)[1] == 100


def test_stripe_memo_shared_across_calls(A):
    pref = PrefixSum2D(A)
    with use_sweep() as state:
        memo = state.stripe_memo(pref)
        assert memo == {}
        partition_2d(pref, 12, "JAG-M-OPT-HOR")
        assert state.stripe_memo(pref) is memo
        assert len(memo) > 0  # the DP deposited stripe facts


# ---------------------------------------------------------------------------
# Poisoning: wrong bounds cannot be installed through the public API


def test_record_rejects_contradicting_monotone_optima():
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "jag_m", 10, 100)
    with pytest.raises(SweepInvariantError):
        state.record_mono_opt(obj, "jag_m", 10, 99)  # duplicate m, new value
    with pytest.raises(SweepInvariantError):
        state.record_mono_opt(obj, "jag_m", 20, 150)  # larger m, larger B
    with pytest.raises(SweepInvariantError):
        state.record_mono_opt(obj, "jag_m", 5, 50)  # smaller m, smaller B


def test_record_rejects_witness_undercutting_optimum():
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "bisect", 10, 100)
    with pytest.raises(SweepInvariantError):
        # nothing at m=5 can beat the optimum recorded at m=10
        state.record_mono_ub(obj, "bisect", 5, 99)
    with pytest.raises(SweepInvariantError):
        state.record_mono_opt(obj, "bisect", 20, 80)
        state.record_mono_ub(obj, "bisect", 20, 79)


def test_record_rejects_optimum_above_feasible_witness():
    state = SweepState()
    obj = object()
    state.record_mono_ub(obj, "jag_m", 10, 100)
    with pytest.raises(SweepInvariantError):
        state.record_mono_opt(obj, "jag_m", 10, 101)  # witness already beat it


def test_record_rejects_unknown_class():
    state = SweepState()
    with pytest.raises(SweepInvariantError):
        state.record_mono_opt(object(), "jag_pq", 4, 10)


def test_grid_records_reject_componentwise_contradictions():
    state = SweepState()
    obj = object()
    state.record_grid_opt(obj, 2, 3, 100)
    with pytest.raises(SweepInvariantError):
        state.record_grid_opt(obj, 2, 3, 90)
    with pytest.raises(SweepInvariantError):
        state.record_grid_opt(obj, 4, 6, 150)  # dominates but worse
    with pytest.raises(SweepInvariantError):
        state.record_grid_opt(obj, 1, 2, 50)  # dominated but better
    with pytest.raises(SweepInvariantError):
        # a feasible witness at a dominated grid implies B*(2,3) <= 99,
        # contradicting the recorded optimum 100
        state.record_grid_ub(obj, 1, 2, 99)
    # incomparable factorizations are unconstrained (no m-monotonicity)
    state.record_grid_opt(obj, 6, 1, 160)


def test_grid_dominance_bounds():
    state = SweepState()
    obj = object()
    state.record_grid_opt(obj, 2, 3, 100)
    exact, lb, ub = state.grid_bounds(obj, 4, 6)
    assert exact is None and lb is None and ub == 100
    exact, lb, ub = state.grid_bounds(obj, 1, 3)
    assert exact is None and lb == 100 and ub is None
    # incomparable: no transfer either way
    assert state.grid_bounds(obj, 3, 2) == (None, None, None)


def test_untracked_objects_get_no_bounds():
    state = SweepState()
    assert state.mono_bounds(object(), "jag_m", 4) == (None, None, None)
    assert state.grid_bounds(object(), 2, 2) == (None, None, None)
    assert state.mono_witness(object(), "jag_m", 4) is None
    assert state.grid_witness(object(), 2, 2) is None


def test_tracking_capacity_bound():
    from repro.sweep import state as state_mod

    state = SweepState()
    cap = state_mod._MAX_TRACKED
    keep = [object() for _ in range(cap + 5)]
    for i, obj in enumerate(keep):
        state.record_mono_opt(obj, "jag_m", 4, 10)
        if i < cap:
            assert state.mono_bounds(obj, "jag_m", 4)[0] == 10
    # beyond capacity: silently no warmth, never an error
    assert state.mono_bounds(keep[-1], "jag_m", 4) == (None, None, None)
    assert state.stripe_memo(keep[-1]) is None


def test_identity_keying_holds_references():
    # the store must pin tracked objects so a GC'd id cannot alias a new one
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "jag_m", 4, 10)
    assert state._refs[id(obj)] is obj


# ---------------------------------------------------------------------------
# Kwargs-scoped fact keys (regression: facts from differently-parameterized
# solver calls used to share one key and collide)


def test_same_class_different_kwargs_coexist():
    # pinned regression: before scoping, the second record of the same
    # (class, m) under different solver kwargs raised SweepInvariantError
    # ("recorded twice") or silently poisoned the first fact
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "jag_m", 8, 100, kw={"num_stripes": 2})
    state.record_mono_opt(obj, "jag_m", 8, 120, kw={"num_stripes": 3})
    assert state.mono_bounds(obj, "jag_m", 8, kw={"num_stripes": 2})[0] == 100
    assert state.mono_bounds(obj, "jag_m", 8, kw={"num_stripes": 3})[0] == 120


def test_scope_canonicalization():
    from repro.sweep import canonical_scope

    # None values are defaults (dropped); order is irrelevant; values are
    # type-tagged so 1 and "1" and True stay distinct scopes
    assert canonical_scope(None) == ()
    assert canonical_scope({}) == ()
    assert canonical_scope({"a": None}) == ()
    assert canonical_scope({"a": 1, "b": "x"}) == canonical_scope({"b": "x", "a": 1})
    assert canonical_scope({"a": 1}) != canonical_scope({"a": "1"})
    assert canonical_scope({"a": 1}) != canonical_scope({"a": True})
    # an already-canonical scope passes through unchanged (store replay)
    scope = canonical_scope({"num_stripes": 4})
    assert canonical_scope(scope) == scope


def test_two_num_stripes_in_one_scope_stay_cold_identical(A):
    # e2e pin for the contamination bug: two differently-parameterized
    # JAG-M-HEUR calls inside one sweep must each match their cold baseline
    pref = PrefixSum2D(A)
    cold1 = partition_2d(PrefixSum2D(A), 12, "JAG-M-HEUR", num_stripes=1)
    cold4 = partition_2d(PrefixSum2D(A), 12, "JAG-M-HEUR", num_stripes=4)
    with use_sweep():
        warm1 = partition_2d(pref, 12, "JAG-M-HEUR", num_stripes=1)
        warm4 = partition_2d(pref, 12, "JAG-M-HEUR", num_stripes=4)
        again1 = partition_2d(pref, 12, "JAG-M-HEUR", num_stripes=1)
    assert _rects(warm1) == _rects(again1) == _rects(cold1)
    assert _rects(warm4) == _rects(cold4)
    pc = PrefixSum2D(A)
    assert warm1.max_load(pc) == cold1.max_load(pc)
    assert warm4.max_load(pc) == cold4.max_load(pc)


def test_constrained_feasibility_transfers_to_unscoped_query():
    # a partition produced under any kwargs is still a real partition:
    # its load is an upper bound for the unconstrained class optimum
    state = SweepState()
    obj = object()
    state.record_mono_ub(obj, "jag_m", 8, 140, kw={"num_stripes": 2})
    state.record_mono_opt(obj, "jag_m", 8, 130, kw={"num_stripes": 3})
    assert state.mono_bounds(obj, "jag_m", 8)[2] == 130  # min over scopes
    assert state.mono_witness(obj, "jag_m", 8) == 130


def test_unscoped_optimum_lower_bounds_constrained_query():
    # the unconstrained optimum is over a superset of the constrained
    # search space, so it transfers as a lower bound — never as exact
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "jag_m", 8, 100)
    exact, lb, _ = state.mono_bounds(obj, "jag_m", 8, kw={"num_stripes": 2})
    assert exact is None and lb == 100


def test_constrained_optimum_never_leaks_exact_to_unscoped():
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "jag_m", 8, 150, kw={"num_stripes": 2})
    exact, _, ub = state.mono_bounds(obj, "jag_m", 8)
    assert exact is None  # constrained optimum is not the class optimum
    assert ub == 150  # ... but it is feasible, hence an upper bound


def test_record_rejects_constrained_fact_beating_unscoped_optimum():
    state = SweepState()
    obj = object()
    state.record_mono_opt(obj, "jag_m", 8, 100)
    with pytest.raises(SweepInvariantError):
        # a constrained search space cannot beat the unconstrained optimum
        state.record_mono_ub(obj, "jag_m", 8, 99, kw={"num_stripes": 2})


def test_bisect_class_records_under_sweep():
    from repro.oned.bisect import bisect_bottleneck

    rng = np.random.default_rng(0)
    P = np.zeros(65, dtype=np.int64)
    np.cumsum(rng.integers(0, 50, 64), out=P[1:])
    with use_sweep() as state:
        b = bisect_bottleneck(P, 8)
        assert state.mono_bounds(P, "bisect", 8)[0] == b
        assert bisect_bottleneck(P, 8) == b
    assert bisect_bottleneck(P, 8) == b  # cold call agrees after the sweep
