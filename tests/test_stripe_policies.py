"""Tests for the JAG-M-HEUR stripe-count policies (sqrt / theorem4 / auto)."""

import pytest

from repro.core.errors import ParameterError
from repro.core.prefix import PrefixSum2D
from repro.instances import peak, slac_instance, uniform
from repro.jagged import jag_m_heur
from repro.jagged.m_heur import _stripe_candidates


class TestCandidates:
    def test_int_passthrough(self, rng):
        pref = PrefixSum2D(rng.integers(1, 9, (32, 32)))
        assert _stripe_candidates(pref, 16, 5) == [5]

    def test_sqrt_default(self, rng):
        pref = PrefixSum2D(rng.integers(1, 9, (100, 100)))
        assert _stripe_candidates(pref, 100, "sqrt") == [10]

    def test_theorem4_uses_delta(self):
        pref = PrefixSum2D(uniform(64, 1.2, seed=0))
        (p4,) = _stripe_candidates(pref, 36, "theorem4")
        from repro.theory.bounds import delta_of, theorem4_best_p

        expected = int(round(theorem4_best_p(delta_of(pref), 36, 64)))
        assert p4 == max(1, min(expected, 64, 36))

    def test_theorem4_falls_back_on_zeros(self):
        pref = PrefixSum2D(slac_instance(64))
        assert _stripe_candidates(pref, 36, "theorem4") == [6]  # sqrt fallback

    def test_auto_contains_sqrt(self, rng):
        pref = PrefixSum2D(rng.integers(1, 9, (64, 64)))
        cands = _stripe_candidates(pref, 64, "auto")
        assert 8 in cands and len(cands) >= 3
        assert all(1 <= c <= 64 for c in cands)

    def test_unknown_policy(self, rng):
        pref = PrefixSum2D(rng.integers(1, 9, (8, 8)))
        with pytest.raises(ParameterError):
            _stripe_candidates(pref, 4, "magic")


class TestPolicies:
    def test_auto_never_worse_than_sqrt(self):
        for seed in range(4):
            A = peak(96, seed=seed)
            pref = PrefixSum2D(A)
            for m in (16, 64, 100):
                base = jag_m_heur(pref, m, num_stripes="sqrt").max_load(pref)
                auto = jag_m_heur(pref, m, num_stripes="auto").max_load(pref)
                assert auto <= base

    def test_policies_valid(self, rng):
        A = rng.integers(1, 50, (40, 40))
        for policy in ("sqrt", "theorem4", "auto", 3):
            p = jag_m_heur(A, 12, num_stripes=policy)
            p.validate()
            assert p.m == 12

    def test_policies_on_sparse(self):
        A = slac_instance(96)
        for policy in ("theorem4", "auto"):
            p = jag_m_heur(A, 25, num_stripes=policy)
            p.validate()
