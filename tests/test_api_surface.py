"""API-surface quality gates.

Every public name is importable, resolvable through ``__all__``, and
documented; the registry is consistent; the package version is sane.
"""

import importlib
import inspect

import pytest

import repro

MODULES = [
    "repro",
    "repro.core",
    "repro.core.metrics",
    "repro.core.partition",
    "repro.core.prefix",
    "repro.core.rectangle",
    "repro.core.registry",
    "repro.core.render",
    "repro.core.serialize",
    "repro.oned",
    "repro.oned.api",
    "repro.oned.bisect",
    "repro.oned.dp",
    "repro.oned.hetero",
    "repro.oned.heuristics",
    "repro.oned.multicost",
    "repro.oned.nicol",
    "repro.oned.probe",
    "repro.rectilinear",
    "repro.jagged",
    "repro.jagged.hetero",
    "repro.hierarchical",
    "repro.spiral",
    "repro.volume",
    "repro.theory",
    "repro.instances",
    "repro.instances.pic",
    "repro.instances.mesh",
    "repro.runtime",
    "repro.dynamic",
    "repro.experiments",
    "repro.parallel",
    "repro.parallel.config",
    "repro.parallel.pool",
    "repro.parallel.shm",
]


@pytest.mark.parametrize("modname", MODULES)
def test_module_all_resolves(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__, f"{modname} lacks a module docstring"
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{modname}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("modname", MODULES)
def test_public_callables_documented(modname):
    mod = importlib.import_module(modname)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{modname}.{name} lacks a docstring"


def test_version():
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_registry_values_callable():
    for name, fn in repro.ALGORITHMS.items():
        assert callable(fn), name


def test_algorithm_names_subset_of_registry():
    for name in repro.algorithm_names():
        assert name in repro.ALGORITHMS


def test_top_level_quickstart_surface():
    """The names the README quickstart uses must exist at top level."""
    for name in ("partition_2d", "partition_1d", "load_imbalance", "Partition", "Rect"):
        assert hasattr(repro, name)
