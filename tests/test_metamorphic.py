"""Metamorphic properties of the exact algorithms.

Transformations with known effect on the optimum: scaling loads scales the
bottleneck; transposing the matrix transposes jagged orientations; adding a
constant-load frame changes totals predictably; reversing a 1D array leaves
the optimal bottleneck unchanged.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.prefix import PrefixSum2D
from repro.jagged import jag_m_opt_bottleneck, jag_pq_opt_bottleneck
from repro.oned.bisect import bisect_bottleneck
from repro.oned.nicol import nicol_plus_bottleneck

from .conftest import load_arrays, prefix_of

tiny_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
    elements=st.integers(0, 25),
)


class TestOneDMetamorphic:
    @given(load_arrays, st.integers(1, 8), st.integers(2, 5))
    @settings(max_examples=50)
    def test_scaling(self, vals, m, c):
        """OPT(c·A, m) == c·OPT(A, m)."""
        assert bisect_bottleneck(prefix_of(vals * c), m) == c * bisect_bottleneck(
            prefix_of(vals), m
        )

    @given(load_arrays, st.integers(1, 8))
    @settings(max_examples=50)
    def test_reversal(self, vals, m):
        """The interval-partition optimum is reversal-invariant."""
        assert nicol_plus_bottleneck(prefix_of(vals), m) == nicol_plus_bottleneck(
            prefix_of(vals[::-1].copy()), m
        )

    @given(load_arrays, st.integers(1, 8))
    @settings(max_examples=50)
    def test_concatenating_zeros(self, vals, m):
        """Appending zero-load cells never changes the optimum."""
        padded = np.concatenate([vals, np.zeros(3, dtype=np.int64)])
        assert bisect_bottleneck(prefix_of(padded), m) == bisect_bottleneck(
            prefix_of(vals), m
        )

    @given(load_arrays, st.integers(1, 7))
    @settings(max_examples=50)
    def test_monotone_in_m(self, vals, m):
        """More processors never hurt."""
        P = prefix_of(vals)
        assert bisect_bottleneck(P, m + 1) <= bisect_bottleneck(P, m)


class TestTwoDMetamorphic:
    @given(tiny_matrices, st.integers(1, 6), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_mway_scaling(self, A, m, c):
        a = jag_m_opt_bottleneck(PrefixSum2D(A), m)
        b = jag_m_opt_bottleneck(PrefixSum2D(A * c), m)
        assert b == c * a

    @given(tiny_matrices, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_pq_column_mirror_invariant(self, A, P, Q):
        """Mirroring columns maps P×Q-way jagged partitions onto themselves."""
        a = jag_pq_opt_bottleneck(PrefixSum2D(A), P, Q)
        b = jag_pq_opt_bottleneck(PrefixSum2D(np.ascontiguousarray(A[:, ::-1])), P, Q)
        assert a == b

    @given(tiny_matrices, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_pq_ver_equals_hor_on_transpose(self, A, P, Q):
        """P stripes over A's rows == P stripes over Aᵀ's columns."""
        a = jag_pq_opt_bottleneck(PrefixSum2D(A), P, Q)
        b = jag_pq_opt_bottleneck(PrefixSum2D(np.ascontiguousarray(A.T)).transpose(), P, Q)
        assert a == b

    @given(tiny_matrices, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_mway_monotone_in_m(self, A, m):
        pref = PrefixSum2D(A)
        assert jag_m_opt_bottleneck(pref, m + 1) <= jag_m_opt_bottleneck(pref, m)

    @given(tiny_matrices, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_mway_row_permutation_can_only_help_or_hurt_consistently(self, A, m):
        """Sanity: a row flip (spatial mirror) keeps the m-way optimum.

        Mirroring rows maps every jagged partition to a jagged partition
        with the same loads, so the optimum is invariant.
        """
        pref = PrefixSum2D(A)
        flipped = PrefixSum2D(np.ascontiguousarray(A[::-1]))
        assert jag_m_opt_bottleneck(pref, m) == jag_m_opt_bottleneck(flipped, m)
