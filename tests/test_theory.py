"""Tests for the worst-case analysis module (Lemma 1, Theorems 1–4)."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.instances import slac_instance, uniform
from repro.theory.bounds import (
    delta_of,
    lemma1_dc_bound,
    theorem1_ratio,
    theorem2_best_p,
    theorem3_ratio,
    theorem4_best_p,
)


class TestDelta:
    def test_uniform_band(self):
        A = uniform(32, 1.5, seed=0)
        assert 1.0 <= delta_of(A) <= 1.5

    def test_zeros_rejected(self):
        A = np.array([[0, 1], [2, 3]])
        with pytest.raises(ParameterError):
            delta_of(A)

    def test_slac_undefined(self):
        # "the matrix contains zeroes, therefore Δ is undefined" (§4.1)
        with pytest.raises(ParameterError):
            delta_of(slac_instance(64))

    def test_accepts_prefix(self):
        from repro.core.prefix import PrefixSum2D

        A = np.array([[2, 4], [8, 2]])
        assert delta_of(PrefixSum2D(A)) == 4.0


class TestFormulas:
    def test_theorem1_value(self):
        # ratio = (1 + Δ P/n1)(1 + Δ Q/n2)
        assert theorem1_ratio(2.0, 10, 20, 100, 100) == pytest.approx(1.2 * 1.4)

    def test_theorem1_domain(self):
        with pytest.raises(ParameterError):
            theorem1_ratio(2.0, 100, 10, 100, 100)
        with pytest.raises(ParameterError):
            theorem1_ratio(0.5, 1, 1, 10, 10)

    def test_theorem2_minimizes_theorem1(self):
        """P* = sqrt(m n1/n2) minimizes the Theorem 1 ratio over real P."""
        m, n1, n2, delta = 400, 300, 200, 1.7
        p_star = theorem2_best_p(m, n1, n2)
        f = lambda P: (1 + delta * P / n1) * (1 + delta * (m / P) / n2)
        for p in (p_star / 2, p_star * 0.9, p_star * 1.1, p_star * 2):
            assert f(p_star) <= f(p) + 1e-9

    def test_theorem3_value(self):
        got = theorem3_ratio(1.0, 5, 100, 50, 50)
        expected = (100 / 95) * (1 + 1 / 50) + (100 / (5 * 50)) * (1 + 5 / 50)
        assert got == pytest.approx(expected)

    def test_theorem3_domain(self):
        with pytest.raises(ParameterError):
            theorem3_ratio(1.2, 50, 100, 50, 50)  # P >= n1
        with pytest.raises(ParameterError):
            theorem3_ratio(1.2, 100, 100, 500, 50)  # P >= m

    def test_theorem4_minimizes_theorem3(self):
        """P* from Theorem 4 minimizes the Theorem 3 ratio over real P."""
        delta, m, n2 = 1.5, 900, 400
        n1 = 10**9  # Theorem 4's P* is independent of n1; avoid domain edges
        p_star = theorem4_best_p(delta, m, n2)
        f = lambda P: (m / (m - P)) * (1 + delta / n2) + (delta * m / (P * n2)) * (
            1 + delta * P / n1
        )
        for p in (p_star / 3, p_star * 0.8, p_star * 1.25, p_star * 3):
            if 0 < p < m:
                assert f(p_star) <= f(p) + 1e-9

    def test_theorem4_linear_in_m(self):
        assert theorem4_best_p(1.3, 2000, 512) == pytest.approx(
            2 * theorem4_best_p(1.3, 1000, 512)
        )

    def test_lemma1_value(self):
        assert lemma1_dc_bound(1000, 10, 100, 2.0) == pytest.approx(100 * 1.2)

    def test_lemma1_domain(self):
        with pytest.raises(ParameterError):
            lemma1_dc_bound(10, 0, 5, 1.5)
