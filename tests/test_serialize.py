"""Tests for partition serialization (dict / JSON / NPZ round-trips)."""

import json

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.prefix import PrefixSum2D
from repro.core.serialize import (
    load_partition,
    partition_from_dict,
    partition_to_dict,
    save_partition,
)
from repro.hierarchical import hier_rb
from repro.jagged import jag_m_heur
from repro.rectilinear import rect_nicol


def assert_same_partition(a, b, A):
    assert a.shape == b.shape
    assert a.m == b.m
    assert [tuple(r.to_inclusive()) for r in a.rects if not r.is_empty] == [
        tuple(r.to_inclusive()) for r in b.rects if not r.is_empty
    ]
    pf = PrefixSum2D(A)
    np.testing.assert_array_equal(a.loads(pf), b.loads(pf))


class TestDictRoundtrip:
    @pytest.mark.parametrize("algo", [jag_m_heur, hier_rb, rect_nicol])
    def test_roundtrip(self, rng, algo):
        A = rng.integers(1, 50, (20, 24))
        p = algo(A, 7)
        q = partition_from_dict(partition_to_dict(p))
        assert_same_partition(p, q, A)
        assert q.method == p.method

    def test_dict_is_jsonable(self, rng):
        A = rng.integers(1, 50, (10, 10))
        p = jag_m_heur(A, 4)
        payload = json.dumps(partition_to_dict(p))
        q = partition_from_dict(json.loads(payload))
        assert_same_partition(p, q, A)

    def test_meta_arrays_serialized(self, rng):
        A = rng.integers(1, 50, (12, 12))
        p = jag_m_heur(A, 4, orientation="hor")
        d = partition_to_dict(p)
        assert isinstance(d["meta"]["stripe_cuts"], list)
        assert d["meta"]["orientation"] == "hor"

    def test_rejects_foreign_payload(self):
        with pytest.raises(ParameterError):
            partition_from_dict({"format": "something-else"})


class TestFileRoundtrip:
    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_roundtrip(self, rng, tmp_path, suffix):
        A = rng.integers(1, 50, (16, 16))
        p = hier_rb(A, 5)
        path = save_partition(p, tmp_path / f"part{suffix}")
        q = load_partition(path)
        assert_same_partition(p, q, A)

    def test_validity_preserved(self, rng, tmp_path):
        A = rng.integers(1, 50, (16, 16))
        p = jag_m_heur(A, 9)
        q = load_partition(save_partition(p, tmp_path / "p.json"))
        q.validate()

    def test_owner_lookup_still_works(self, rng, tmp_path):
        # the O(log) indexer is dropped; the linear fallback must agree
        A = rng.integers(1, 50, (12, 12))
        p = jag_m_heur(A, 6)
        q = load_partition(save_partition(p, tmp_path / "p.npz"))
        for i in range(0, 12, 3):
            for j in range(0, 12, 3):
                assert q.owner_of(i, j) == p.owner_of(i, j)
