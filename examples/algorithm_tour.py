#!/usr/bin/env python
"""A tour of the partition classes of the paper (Figure 1) on one instance.

Renders each class of solution as ASCII art on a small Peak instance so the
structural differences are visible: rectilinear grids, P×Q-way jagged,
m-way jagged, hierarchical — plus the exact optima for the jagged classes
and their theoretical guarantees.

Run:  python examples/algorithm_tour.py
"""

import numpy as np

from repro import load_imbalance, lower_bound, partition_2d
from repro.instances import peak
from repro.theory.bounds import delta_of, jag_m_guarantee, jag_pq_guarantee

N, M = 48, 12
A = peak(N, seed=7)


def render(part, width=48):
    """ASCII owner map: one letter per cell block."""
    owner = part.owner_map()
    step = max(1, N // width)
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    lines = []
    for i in range(0, N, step):
        lines.append("".join(glyphs[owner[i, j] % len(glyphs)] for j in range(0, N, step)))
    return "\n".join(lines)


print(f"instance: {N}x{N} Peak, m={M}, delta={delta_of(A):.1f}")
print(f"lower bound Lmax >= {lower_bound(A, M):,}\n")

for name, blurb in [
    ("RECT-UNIFORM", "rectilinear grid, balances area not load (Fig 1a)"),
    ("RECT-NICOL", "rectilinear grid, iteratively refined (Fig 1a)"),
    ("JAG-PQ-HEUR", "P stripes x Q rectangles each (Fig 1b)"),
    ("JAG-PQ-OPT", "optimal P x Q-way jagged"),
    ("JAG-M-HEUR", "m-way jagged: variable rectangles per stripe (Fig 1c)"),
    ("JAG-M-OPT", "optimal m-way jagged (the paper's new class)"),
    ("HIER-RB", "recursive bisection (Fig 1d)"),
    ("HIER-RELAXED", "relaxed hierarchical DP"),
    ("HIER-OPT", "optimal hierarchical bipartition"),
]:
    part = partition_2d(A, M, name)
    part.validate()
    print(f"--- {name}: {blurb}")
    print(f"    Lmax = {part.max_load(A):,}   imbalance = {load_imbalance(A, part):.2%}")
    print("\n".join("    " + line for line in render(part).splitlines()[::4]))
    print()

P = Q = int(np.sqrt(M)) if int(np.sqrt(M)) ** 2 == M else None
print("theoretical guarantees (Theorems 1 and 3):")
print(f"  JAG-PQ-HEUR (P=3, Q=4): ratio <= {jag_pq_guarantee(A, 3, 4):.2f}")
print(f"  JAG-M-HEUR  (P=3):      ratio <= {jag_m_guarantee(A, 3, M):.2f}")
