#!/usr/bin/env python
"""Dynamic load balancing of a particle-in-cell simulation.

The motivating application of the paper: a PIC code (here the bundled
magnetosphere-like substitute) whose computational load follows the particles
as they move.  We extract load-matrix snapshots, partition them with
different algorithms, and use the BSP execution simulator to compare
end-to-end times — including the data-migration cost of repartitioning,
the future-work question of the paper's Section 5.

Run:  python examples/particle_in_cell.py        (~1 minute)
"""

from repro import partition_2d
from repro.instances.pic import PICConfig, PICMagDataset
from repro.runtime import BSPSimulator, CostModel

M = 64  # processors
# stronger per-particle cost than the paper's PIC-MAG band, so the load is
# heterogeneous enough for the strategies to visibly differ in one page
CFG = PICConfig(grid=96, particles=20_000, seed=9, particle_load=900, smooth=2)

print("generating PIC-MAG-like snapshots (every 500 iterations)...")
dataset = PICMagDataset(CFG, period=500, max_iteration=5_000, cache=False)
snaps = list(dataset.snapshots())
A0 = snaps[0][1]
print(f"  {len(snaps)} snapshots of {A0.shape}, delta ~ {A0.max() / A0.min():.2f}\n")

cost = CostModel(alpha=1e-6, beta=4e-6, gamma=1.5e-6)


def strategy(name):
    return lambda pref, m: partition_2d(pref, m, name)


print(f"{'partitioner':<14} {'policy':<10} {'total':>9} {'comp':>8} "
      f"{'comm':>8} {'migr':>8} {'mean imb':>9}")
for name in ("RECT-UNIFORM", "JAG-PQ-HEUR", "JAG-M-HEUR", "HIER-RB", "HIER-RELAXED"):
    for label, every in (("static", 0), ("dynamic", 1)):
        sim = BSPSimulator(M, strategy(name), cost=cost, repartition_every=every)
        rep = sim.run(snaps, steps_per_snapshot=500)
        print(
            f"{name:<14} {label:<10} {rep.total_time:>8.2f}s {rep.compute_time:>7.2f}s "
            f"{rep.comm_time:>7.2f}s {rep.migration_time:>7.2f}s {rep.mean_imbalance:>8.2%}"
        )
    print()

print(
    "Notes: 'static' partitions once and rides out the drift; 'dynamic'\n"
    "repartitions at every snapshot and pays the migration.  On drifting\n"
    "loads dynamic repartitioning roughly halves the end-to-end time; the\n"
    "paper's JAG-M-HEUR and HIER-RELAXED reach the lowest imbalance, with\n"
    "the jagged structure migrating less data than the hierarchical one\n"
    "(the Section 5 trade-off the paper leaves as future work)."
)
