#!/usr/bin/env python
"""2D decomposition of a sparse matrix for parallel SpMV.

The paper's first motivating application (refs [1]–[3]): distribute a sparse
matrix over processors as rectangles so that per-processor work (the
nonzeros inside the rectangle) is balanced.  Power-law matrices (web/social
graphs, here an R-MAT) are exactly where the uniform block distribution
falls apart.

Run:  python examples/sparse_matrix.py
"""

import numpy as np

from repro import load_imbalance, partition_2d
from repro.core.render import ascii_render
from repro.instances import spmv_instance

N = 128  # blocking resolution
M = 64  # processors

for model, label in (("rmat", "R-MAT scale-14 (power-law)"), ("mesh", "5-point stencil mesh")):
    A = spmv_instance(N, model=model, scale=14, mesh_size=256, seed=1)
    print(f"=== {label}: {A.sum():,} nonzeros on a {N}x{N} block grid, "
          f"{(A == 0).mean():.0%} empty blocks")
    print(f"{'algorithm':<14} {'imbalance':>10}")
    best = None
    for name in ("RECT-UNIFORM", "RECT-NICOL", "JAG-PQ-HEUR", "JAG-M-HEUR",
                 "HIER-RB", "HIER-RELAXED"):
        part = partition_2d(A, M, name)
        imb = load_imbalance(A, part)
        print(f"{name:<14} {imb:>9.2%}")
        if best is None or imb < best[1]:
            best = (part, imb, name)
    part, imb, name = best
    print(f"\nbest ({name}) as an owner map (rows x cols of the sparse matrix):")
    print(ascii_render(part, max_width=56, max_height=18))
    print()

print("The skewed R-MAT nonzeros sink RECT-UNIFORM by an order of magnitude;\n"
      "adaptive rectangles track the dense low-index corner (top-left).")
