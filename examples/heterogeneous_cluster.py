#!/usr/bin/env python
"""Partitioning for a cluster with heterogeneous node speeds.

The paper's related work points at distributing load over processors of
different speeds (§1, ref [7]).  This example uses the library's extension:
a machine with two generations of nodes (fast and slow) processes a
spatially located workload, and the jagged partitioner sizes each node's
rectangle to its speed so everyone finishes together.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro.core.prefix import PrefixSum2D
from repro.jagged import hetero_makespan_2d, jag_hetero, jag_m_heur

# workload: background + two activity regions
rng = np.random.default_rng(7)
N = 256
A = rng.integers(900, 1101, (N, N))
ii, jj = np.meshgrid(np.arange(N), np.arange(N), indexing="ij")
A += (3000 * np.exp(-(((ii - 70) ** 2 + (jj - 60) ** 2) / (2 * 30.0**2)))).astype(np.int64)
A += (2000 * np.exp(-(((ii - 190) ** 2 + (jj - 180) ** 2) / (2 * 40.0**2)))).astype(np.int64)
pref = PrefixSum2D(A)

# cluster: 4 new nodes (2.5x) + 12 old nodes (1.0x)
speeds = np.array([2.5] * 4 + [1.0] * 12)
m = len(speeds)
ideal = pref.total / speeds.sum()

print(f"workload {N}x{N}, total {pref.total:,}")
print(f"cluster: 4 fast (2.5x) + 12 slow (1.0x) nodes; ideal makespan {ideal:,.0f}\n")

# speed-blind partition: every node gets an equal share of load
blind = jag_m_heur(pref, m)
blind_t = hetero_makespan_2d(blind, pref, speeds)

# speed-aware partition
aware = jag_hetero(pref, speeds)
aware.validate()
aware_t = aware.meta["makespan"]

print(f"{'strategy':<22} {'makespan':>12} {'vs ideal':>9}")
print(f"{'JAG-M-HEUR (blind)':<22} {blind_t:>12,.0f} {blind_t / ideal - 1:>8.1%}")
print(f"{'JAG-HETERO (aware)':<22} {aware_t:>12,.0f} {aware_t / ideal - 1:>8.1%}")

loads = aware.loads(pref).astype(float)
print("\nper-node finishing times (load/speed), speed-aware partition:")
for p in range(m):
    tag = "fast" if speeds[p] > 1 else "slow"
    bar = "#" * int(40 * (loads[p] / speeds[p]) / aware_t)
    print(f"  node {p:2d} ({tag}) {loads[p] / speeds[p]:>12,.0f} {bar}")
