#!/usr/bin/env python
"""Quickstart: partition a spatially located workload into rectangles.

Reproduces the core usage of the paper in ~40 lines: build a load matrix,
run the paper's best heuristics, compare load imbalance against the naive
uniform decomposition, and look up which processor owns a cell.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import algorithm_names, load_imbalance, lower_bound, partition_2d

# A 512x512 spatially located workload: a background cost plus a hot region
# (think: particles concentrated by some physics in one corner of the domain).
rng = np.random.default_rng(42)
A = rng.integers(1000, 1201, size=(512, 512))
ii, jj = np.meshgrid(np.arange(512), np.arange(512), indexing="ij")
A += (4000 * np.exp(-(((ii - 150) ** 2 + (jj - 350) ** 2) / (2 * 60.0**2)))).astype(
    np.int64
)

m = 100  # processors

print(f"load matrix: {A.shape}, total load {A.sum():,}")
print(f"lower bound on the max load for m={m}: {lower_bound(A, m):,}\n")

print(f"{'algorithm':<14} {'max load':>12} {'imbalance':>10}")
for name in algorithm_names(heuristics_only=True):
    part = partition_2d(A, m, name)
    part.validate()  # §2.1's disjointness + cover test
    print(f"{name:<14} {part.max_load(A):>12,} {load_imbalance(A, part):>9.2%}")

# The m-way jagged heuristic is the paper's recommendation: fast and stable.
best = partition_2d(A, m, "JAG-M-HEUR")
print(f"\nJAG-M-HEUR rectangles (first 5 of {best.m}):")
for rect in best.rects[:5]:
    print(f"  rows [{rect.r0}, {rect.r1}) x cols [{rect.c0}, {rect.c1})")

# Compact representations allow O(log) cell->processor lookup (§1).
i, j = 150, 350
print(f"\ncell ({i}, {j}) inside the hot spot is owned by processor "
      f"{best.owner_of(i, j)}")
