#!/usr/bin/env python
"""Partitioning a 3D load volume into rectangular volumes.

The paper's applications live "in a discrete, two or three-dimensional
space" and its PIC-MAG data comes from a 3D simulation accumulated to 2D
(§4.1).  This example skips the accumulation: it builds a 3D
magnetosphere-like load volume directly and compares the 3D lifts of the
paper's algorithms — the uniform grid (MPI_Cart-style), the m-way jagged
heuristic (slabs × 2D jagged), and 3D recursive bisection — on balance and
ghost-cell communication.

Run:  python examples/volume_partitioning.py        (~30 s)
"""

import numpy as np

from repro.volume import PrefixSum3D, vol_hier_rb, vol_jag_m_heur, vol_uniform

N = 64
M = 128

# dense bow-shock-like shell plus a wake tail, in 3D
i, j, k = np.meshgrid(*[np.arange(N)] * 3, indexing="ij")
r = np.sqrt((i - 0.62 * N) ** 2 + (j - 0.5 * N) ** 2 + (k - 0.5 * N) ** 2)
shell = 3500 * np.exp(-((r - 0.22 * N) ** 2) / (2 * (0.05 * N) ** 2))
wake = 1200 * np.exp(
    -(((j - 0.5 * N) ** 2 + (k - 0.5 * N) ** 2) / (2 * (0.08 * N) ** 2))
) * (i > 0.62 * N)
A = (1000 + shell + wake).astype(np.int64)

pref = PrefixSum3D(A)
print(f"load volume: {A.shape}, total {pref.total:,}, "
      f"max/min cell = {A.max() / A.min():.2f}\n")

print(f"{'algorithm':<16} {'imbalance':>10} {'ghost faces':>12} {'max box':>20}")
for name, fn in (
    ("VOL-UNIFORM", vol_uniform),
    ("VOL-JAG-M-HEUR", vol_jag_m_heur),
    ("VOL-HIER-RB", vol_hier_rb),
):
    part = fn(pref, M)
    part.validate()
    loads = part.loads(pref)
    worst = part.boxes[int(np.argmax(loads))]
    print(
        f"{name:<16} {part.imbalance(pref):>9.2%} "
        f"{part.communication_volume():>12,} "
        f"{str(worst.extents):>20}"
    )

print(
    "\nThe load-aware 3D methods shrink boxes around the dense shell and\n"
    "stretch them through the quiet corners, trading a little surface area\n"
    "for a much better balance — the same effect the paper shows in 2D."
)
