#!/usr/bin/env python
"""Partitioning a projected 3D mesh (the paper's SLAC scenario).

A 3D accelerator-cavity mesh is projected onto a 2D plane and discretized;
each vertex carries one unit of computation (§4.1).  The resulting load
matrix is sparse — a third of the cells are zero — the regime of the
paper's Figure 14, where the area-balancing and rectilinear methods collapse
while the adaptive classes stay balanced.

This example also maps the partition back to mesh vertices and reports the
communication that the rectangle decomposition induces.

Run:  python examples/mesh_partitioning.py        (~1 minute)
"""

import numpy as np

from repro import communication_volume, load_imbalance, partition_2d
from repro.instances.mesh import CavityConfig, cavity_vertices, project_vertices

N = 256  # discretization granularity ("changing the granularity", §4.1)
M = 256  # processors

verts = cavity_vertices(CavityConfig())
A = project_vertices(verts, N)
print(f"mesh: {len(verts):,} vertices -> {N}x{N} load matrix, "
      f"{(A == 0).mean():.0%} empty cells\n")

print(f"{'algorithm':<14} {'imbalance':>10} {'boundary edges':>15}")
results = {}
for name in ("RECT-UNIFORM", "RECT-NICOL", "JAG-PQ-HEUR", "JAG-M-HEUR",
             "HIER-RB", "HIER-RELAXED"):
    part = partition_2d(A, M, name)
    results[name] = part
    print(f"{name:<14} {load_imbalance(A, part):>9.2%} "
          f"{communication_volume(part):>15,}")

# Map vertices to processors through the grid partition (what an application
# would do) and count how many vertices each processor owns.
best = results["HIER-RELAXED"]
u, v = verts[:, 0], verts[:, 1]
iu = np.clip(((u - u.min()) / (u.max() - u.min() + 1e-12) * N).astype(int), 0, N - 1)
iv = np.clip(((v - v.min()) / (v.max() - v.min() + 1e-12) * N).astype(int), 0, N - 1)
owners = best.owner_map()[iu, iv]
counts = np.bincount(owners, minlength=M)
print(
    f"\nHIER-RELAXED vertex ownership: min={counts.min()}, "
    f"mean={counts.mean():.0f}, max={counts.max()} vertices/processor"
)
print(
    "\nAs in Figure 14 of the paper, the sparse mesh sinks the rectilinear\n"
    "methods (uniform and refined) while HIER-RELAXED stays lowest; on this\n"
    "synthetic cavity the jagged heuristics also cope well — the projected\n"
    "silhouette is more regular than SLAC's production mesh (see\n"
    "EXPERIMENTS.md for the full comparison)."
)
