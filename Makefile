# Local mirror of .github/workflows/ci.yml.  ruff and mypy are optional
# (the `dev` extra); when absent they are skipped with a notice rather than
# failing the whole gate, so `make check` works in minimal containers.

PYTHON ?= python

.PHONY: check lint ruff mypy test

check: ruff mypy lint test
	@echo "make check: all gates passed"

ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed (pip install -e '.[dev]') -- skipped"; \
	fi

mypy:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed (pip install -e '.[dev]') -- skipped"; \
	fi

lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/repro

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
