# Local mirror of .github/workflows/ci.yml.  ruff and mypy are optional
# (the `dev` extra); when absent they are skipped with a notice rather than
# failing the whole gate, so `make check` works in minimal containers.

PYTHON ?= python

.PHONY: check lint lint-fast lint-sarif ruff mypy test figures figures-smoke bench-json bench-smoke bench-kernels bench-kernels-smoke bench-parallel bench-parallel-smoke bench-sweep bench-sweep-smoke bench-figures bench-figures-smoke bench-sparse bench-sparse-smoke bench-dynamic bench-dynamic-smoke bench-check-identity

check: ruff mypy lint test
	@echo "make check: all gates passed"

ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed (pip install -e '.[dev]') -- skipped"; \
	fi

mypy:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed (pip install -e '.[dev]') -- skipped"; \
	fi

lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/repro

# pre-commit loop: lint only the files changed vs the merge-base with main
# (worktree edits and untracked files included; project-wide rules and the
# stale-suppression check are skipped on partial sets)
lint-fast:
	PYTHONPATH=src $(PYTHON) -m repro.lint --changed src/repro

# the code-scanning artifact CI uploads
lint-sarif:
	PYTHONPATH=src $(PYTHON) -m repro.lint --format sarif src/repro > repro-lint.sarif || true
	@echo "wrote repro-lint.sarif"

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# regenerate every figure/extension through the committed raw/ store:
# unchanged cells are cache hits, only what changed is recomputed, and a
# killed run resumes where it left off.  Delete raw/ (or add --force) for
# a cold rebuild.
figures:
	PYTHONPATH=src $(PYTHON) -m repro.experiments --all --raw-dir raw --out benchmarks/results

# CI smoke: one small figure twice against a scratch store — the second
# run must be all cache hits and the CSVs byte-identical
figures-smoke:
	rm -rf /tmp/repro-figures-smoke && mkdir -p /tmp/repro-figures-smoke
	PYTHONPATH=src $(PYTHON) -m repro.experiments --figures fig05 \
		--raw-dir /tmp/repro-figures-smoke/raw --out /tmp/repro-figures-smoke/a
	PYTHONPATH=src $(PYTHON) -m repro.experiments --figures fig05 \
		--raw-dir /tmp/repro-figures-smoke/raw --out /tmp/repro-figures-smoke/b
	cmp /tmp/repro-figures-smoke/a/fig05.csv /tmp/repro-figures-smoke/b/fig05.csv
	@echo "figures-smoke: warm rerun byte-identical"

# perf-regression harness: times every optimized kernel against its
# reference path and writes BENCH_core.json at the repo root
bench-json:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --min-speedup 2.0

# CI smoke: tiny instances, seconds of wall-clock, still asserts that the
# optimized paths return bit-identical results
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --profile tiny

# kernel registry family: reference vs numpy (vs numba when the `perf`
# extra is installed) for every registered kernel, asserting bit-identical
# results per row; writes BENCH_kernels.json
bench-kernels:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --kernels --min-speedup 1.5

bench-kernels-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --kernels --profile tiny

# parallel family: serial vs the repro.parallel layer at 1/2/4 workers,
# asserting bit-identical rectangles; writes BENCH_parallel.json
bench-parallel:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --parallel

bench-parallel-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --parallel --profile tiny

# sweep family: repro.sweep.sweep() m-sweeps vs per-m cold calls, asserting
# every cell bit-identical; writes BENCH_sweep.json
bench-sweep:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --sweep --min-speedup 1.5

bench-sweep-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --sweep --profile tiny

# figure-farm family: a fast figure subset regenerated cold / warm /
# interrupted-then-resumed against the raw store, gated on byte-identical
# CSVs; writes BENCH_FIGURES.json
bench-figures:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --figures --min-speedup 5.0

bench-figures-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --figures --profile tiny

# sparse-substrate family: CSR substrate vs dense Γ on the large-profile
# instances (4096² spmv/mesh/slac), gated on bit-identical queries and
# partitions and on spmv substrate memory <= 10% of dense Γ bytes; writes
# BENCH_sparse.json
bench-sparse:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --sparse

bench-sparse-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --sparse --profile tiny

# dynamic family: repartitioning policies over the PIC snapshot stream
# (determinism + legacy-knob identity) plus warm-started per-snapshot
# solves from a persistent sweep store (seed / op-drop / bit-identity
# gates); writes BENCH_dynamic.json
bench-dynamic:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --dynamic

bench-dynamic-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --dynamic --profile tiny

# committed-baseline gate: fail on any `identical: false` in BENCH_*.json
bench-check-identity:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_regress.py --check-identity
