"""Perf-regression harness: before/after wall-clock of the optimized kernels.

Every optimized code path in the repo dispatches on
:func:`repro.perf.config.perf_enabled` and keeps the reference
implementation alive, so this harness can time the *same* entry points in
both modes, in one process, on fixed seeded instances — and assert the
partitions are bit-identical while it does so.

Benches come in three groups:

* ``kernel/*`` — the core kernels in isolation (projection cache, direct
  ndarray bisection, batched feasibility curve, jump-table greedy);
* ``fig_jagged/*`` — one jagged-family figure sweep (uniform instance,
  paper §4's m values at the small profile);
* ``fig_hier/*`` — one hierarchical-family figure sweep (peak instance).

Output is ``BENCH_core.json`` at the repository root (``--out`` to move
it): per-bench ``before_s`` / ``after_s`` / ``speedup`` / ``identical``
plus per-family aggregates.  Run via ``make bench-json`` (full) or ``make
bench-smoke`` (the ``tiny`` profile CI uses).  Exits non-zero if any bench
produced a non-identical result, or — with ``--min-speedup`` — if a figure
family misses the requested aggregate speedup.

``--parallel`` runs the *parallel* family instead: each algorithm with a
multicore backend (stripe-parallel jagged phase 2, subtree-parallel
hierarchical growth) is timed serially and under ``repro.parallel`` with
1, 2 and 4 workers, the rectangles are asserted bit-identical at every
worker count, and ``BENCH_parallel.json`` is written.  Identity is the
gate; the recorded speedups are honest — on a 1-CPU box dispatch
short-circuits to serial (rows record ``pooled: false`` and sit at ~1.0x;
the JSON records ``cpu_count`` so readers can tell).  Run via ``make
bench-parallel`` / ``make bench-parallel-smoke``.

``--sweep`` runs the *sweep* family instead: whole m-sweeps through
:func:`repro.sweep.sweep` (cross-call warm starts: monotone bound reuse,
heuristic witnesses, shared stripe memos) against the same sweep as per-m
cold calls, perf layer on in **both** modes so the measured delta is the
sweep engine alone.  Every (algorithm, m) cell is asserted bit-identical
to its cold call — that is the engine's contract — and
``BENCH_sweep.json`` is written.  Two store phases follow: the same
sweeps warm-started from a freshly populated on-disk fact store
(``store_families``: populate vs warm-from-disk vs cold timings, identity
gated per cell), and the hierarchical witness gate (``hier_witnesses``:
persisted node-decision facts must drop the warm run's ``cut_calls``
counter below cold while the rectangles stay bit-identical).  Run via
``make bench-sweep`` / ``make bench-sweep-smoke``.

``--kernels`` runs the *kernel-registry* family instead: every kernel in
:data:`repro.perf.kernels.KERNELS` is timed once per backend (``reference``
vs ``numpy`` vs — when the ``[perf]`` extra is installed — ``numba``) on
fixed seeded inputs, results are asserted bit-identical across backends,
and ``BENCH_kernels.json`` is written.  ``--min-speedup`` here requires at
least three kernels to reach the threshold on the numpy backend.  Run via
``make bench-kernels`` / ``make bench-kernels-smoke``.

``--figures`` runs the *figure-farm* family instead: a fast subset of the
experiment suite is regenerated three ways against the raw-result store
(:mod:`repro.experiments.rawstore`) — cold into an empty store, warm from
the fully populated store (must be all hits), and interrupted-then-resumed
(an :class:`~repro.experiments.rawstore.InterruptingRawStore` kills the
run after half the cell writes, then a fresh run over the same directory
finishes it).  The gate is byte-identity of the final CSVs across all
three runs; ``--min-speedup`` requires the aggregate warm regeneration to
beat cold by the given factor.  ``BENCH_FIGURES.json`` is written.  Run
via ``make bench-figures`` / the CI ``figures-smoke`` job.

``--sparse`` runs the *sparse-substrate* family instead: the ``large``
profile's instance generators build their CSR substrate
(:class:`repro.core.sparse.SparsePrefix2D`) from the triplet stream while
the dense twins densify, memory (tracemalloc build peak, resident substrate
bytes vs dense Γ bytes) and query/solver wall-clock are recorded for both,
and every query and every solver partition is asserted bit-identical across
substrates.  The spmv rows at the full profile run at 4096² and gate
``sparse_nbytes <= 10%`` of the dense Γ bytes; one ``--scale large``
raw-store cell runs end-to-end (cold compute, then warm hit) on the sparse
substrate.  ``BENCH_sparse.json`` is written.  Run via ``make bench-sparse``
/ ``make bench-sparse-smoke``.

``--dynamic`` runs the *dynamic* family instead: every repartitioning
policy of :mod:`repro.dynamic.policies` drives the BSP simulator over the
PIC-MAG snapshot stream (scenario driver
:meth:`repro.instances.pic.PICMagDataset.stream`), gated on run-to-run
determinism and on the extracted ``EveryK`` policy matching the legacy
``repartition_every`` knob bit-for-bit.  A second phase runs the
``WarmStarted`` policy with JAG-M-OPT against a persistent
:class:`repro.sweep.SweepStore`: cold, populate, then warm-from-disk —
gated on the warm run seeding from the store (``store_seeded > 0``), its
deterministic op count dropping below the populate run, and every
per-snapshot partition staying bit-identical to cold.
``BENCH_dynamic.json`` is written.  Run via ``make bench-dynamic`` /
``make bench-dynamic-smoke``.

``--check-identity`` re-scans every committed ``BENCH_*.json`` at the repo
root and exits non-zero if any row anywhere records ``identical: false`` —
the cheap CI gate that a stale or hand-edited baseline cannot sneak a
non-identical result past review.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.prefix import PrefixSum2D  # noqa: E402
from repro.core.registry import partition_2d  # noqa: E402
from repro.instances import peak, uniform  # noqa: E402
from repro.jagged.hetero import jag_hetero  # noqa: E402
from repro.oned.bisect import bisect_bottleneck, feasible_bottlenecks  # noqa: E402
from repro.oned.probe import min_parts  # noqa: E402
from repro.perf import min_parts_batch, perf_enabled, use_perf  # noqa: E402


@dataclass
class Bench:
    """One before/after measurement: same call, perf layer off vs on."""

    name: str
    family: str
    setup: Callable[[], Any]  # fresh state per repeat (not timed)
    call: Callable[[Any], Any]  # the timed entry point
    key: Callable[[Any], Any]  # comparable form of the result
    repeats: int = 3


def _time_pair(bench: Bench) -> tuple[float, float, Any, Any]:
    """Median-of-N of both modes, ref and perf paired within each repeat.

    Two sources of bias make the classic one-block-per-mode best-of
    unusable on the sub-millisecond figure rows, where the real effect is
    a few percent: slow clock-speed drift lands entirely on whichever mode
    runs second, and on a shared machine the minimum of a block measures
    scheduler luck rather than the code.  So every repeat runs both modes
    back to back (alternating which goes first to cancel ordering bias)
    and each mode reports its *median* repeat — a stable estimator whose
    noise the pairing applies to both sides equally.
    """
    times: dict[bool, list[float]] = {False: [], True: []}
    result: dict[bool, Any] = {False: None, True: None}
    for rep in range(bench.repeats):
        order = (False, True) if rep % 2 == 0 else (True, False)
        for enabled in order:
            with use_perf(enabled):
                state = bench.setup()
                t0 = time.perf_counter()
                result[enabled] = bench.call(state)
                times[enabled].append(time.perf_counter() - t0)
    return (
        statistics.median(times[False]),
        statistics.median(times[True]),
        result[False],
        result[True],
    )


# ---------------------------------------------------------------------------
# bench construction


def _partition_bench(
    name: str, family: str, A: np.ndarray, m: int, method: str, repeats: int
) -> Bench:
    return Bench(
        name=name,
        family=family,
        setup=lambda: PrefixSum2D(A),
        call=lambda pref: partition_2d(pref, m, method),
        key=lambda part: part.rects,
        repeats=repeats,
    )


def _kernel_benches(tiny: bool) -> list[Bench]:
    rng = np.random.default_rng(2024)
    n_proj = 96 if tiny else 256
    A = rng.integers(0, 100, (n_proj, n_proj))
    bands = [tuple(sorted(rng.integers(0, n_proj + 1, 2))) for _ in range(40)]
    bands = [(lo, hi) for lo, hi in bands if hi > lo]

    def proj_sweep(pref: PrefixSum2D) -> int:
        # every band queried several times: the access pattern of the
        # jagged/hierarchical recursions that the projection cache serves
        acc = 0
        for _ in range(6):
            for lo, hi in bands:
                acc ^= int(pref.axis_prefix(1, lo, hi)[-1])
                acc ^= len(pref.boundary_list(1, lo, hi))
        return acc

    n_1d = 20_000 if tiny else 100_000
    values = np.random.default_rng(7).integers(0, 1_000_000, n_1d)
    P = np.concatenate([[0], np.cumsum(values)]).astype(np.int64)
    m_1d = 16 if tiny else 64  # keeps n >= 512*m so the nd probe path engages

    # bottleneck low enough that the greedy crosses ~n/8 intervals: below
    # that the jump table's O(n) build doesn't amortize (measured crossover;
    # m_opt's scan sits far past it because its stripe prefixes are short)
    big_B = 8 * int(P[-1]) // n_1d

    # feasibility curve: many independent probe decisions against one prefix
    # — probe_batch's native shape (one chained searchsorted per greedy round
    # advances every candidate at once)
    total = int(P[-1])
    curve_Bs = np.linspace(total // (2 * m_1d), 2 * total // m_1d, 256).astype(np.int64)

    return [
        Bench(
            name="kernel/projection_cache",
            family="kernels",
            setup=lambda: PrefixSum2D(A),
            call=proj_sweep,
            key=lambda acc: acc,
            repeats=5,
        ),
        Bench(
            name="kernel/bisect_1d_nd_probe",
            family="kernels",
            setup=lambda: P,
            call=lambda Ps: bisect_bottleneck(Ps, m_1d),
            key=lambda B: B,
            repeats=5,
        ),
        Bench(
            name="kernel/probe_feasibility_curve",
            family="kernels",
            setup=lambda: P,
            call=lambda Ps: feasible_bottlenecks(Ps, m_1d, curve_Bs),
            key=lambda out: out.tolist(),
            repeats=5,
        ),
        Bench(
            name="kernel/min_parts_jump_table",
            family="kernels",
            setup=lambda: P,
            # dispatch by hand here: min_parts_batch is the perf twin of
            # min_parts (equality is asserted through the shared key)
            call=lambda Ps: (
                min_parts_batch(Ps, big_B) if perf_enabled() else min_parts(Ps, big_B)
            ),
            key=lambda parts: parts,
            repeats=5,
        ),
    ]


def _figure_benches(tiny: bool) -> list[Bench]:
    benches: list[Bench] = []

    # jagged family: uniform instance (paper §4.1), small-profile m values
    n_jag = 64 if tiny else 128
    A_jag = uniform(n_jag, 1.3, seed=0)
    heur_ms = (16, 36) if tiny else (16, 36, 64, 144)
    opt_ms = (16,) if tiny else (36, 144)
    for method in ("JAG-PQ-HEUR", "JAG-M-HEUR"):
        for m in heur_ms:
            # sub-millisecond rows: the per-mode best-of floor is a noisy
            # estimator at this scale (the true perf edge is a few percent),
            # so spend ~an extra half second on repeats to stabilize it
            benches.append(
                _partition_bench(
                    f"fig_jagged/{method}/m={m}", "jagged", A_jag, m, method, repeats=31
                )
            )
    for m in opt_ms:
        benches.append(
            _partition_bench(
                f"fig_jagged/JAG-M-OPT/m={m}", "jagged", A_jag, m, "JAG-M-OPT", repeats=1
            )
        )

    # hierarchical family: peak instance (paper Figs 3-5), m sweep
    n_hier = 128 if tiny else 512
    A_hier = peak(n_hier, seed=0)
    hier_ms = (16, 64) if tiny else (64, 144, 256, 400)
    for method in ("HIER-RB", "HIER-RELAXED"):
        for m in hier_ms:
            benches.append(
                _partition_bench(
                    f"fig_hier/{method}/m={m}", "hierarchical", A_hier, m, method, repeats=5
                )
            )
    return benches


# ---------------------------------------------------------------------------
# kernel-registry family (--kernels)


@dataclass
class KernelBench:
    """One registry-kernel workload timed per backend (same call, same key)."""

    name: str
    call: Callable[[], Any]  # dispatches through the registry entry point
    key: Callable[[Any], Any]
    repeats: int = 5


def _registry_benches(tiny: bool) -> list[KernelBench]:
    """Fixed seeded workloads, one per registry kernel (plus the early-exit
    shape of ``probe_batch`` — satellite coverage for the compacted active
    set: candidates that die or finish in round one must cost one round)."""
    from repro.perf import kernels as K

    rng = np.random.default_rng(42)
    n = 8_000 if tiny else 60_000
    P = np.concatenate([[0], np.cumsum(rng.integers(1, 1_000, n))]).astype(np.int64)
    total = int(P[-1])
    m = 64
    curve_Bs = np.linspace(total // (2 * m), 2 * total // m, 256).astype(np.int64)
    # early-exit shape: half the candidates are infeasible at B=0 (stuck in
    # round one), half cover the whole array (done in round one) — the
    # lockstep loop must terminate after a single round either way
    exit_Bs = np.concatenate(
        [np.zeros(128, dtype=np.int64), np.full(128, total, dtype=np.int64)]
    )
    big_B = 8 * total // n
    m_cuts = n // 8  # dense-cut regime: hi - lo <= 16 * m engages the jump table

    # windowed scoring kernels: many windows of one memoized projection,
    # the access pattern of a hierarchical recursion level
    wins = sorted({tuple(sorted(rng.integers(0, n + 1, 2))) for _ in range(200)})
    wins = [(int(a), int(b)) for a, b in wins if b - a >= 2]
    orients = ((3, 5), (5, 3))

    S = 8
    n_multi = 1_000 if tiny else 4_000
    M = np.cumsum(rng.integers(0, 100, (S, n_multi)), axis=1)
    M = np.concatenate([np.zeros((S, 1), dtype=np.int64), M], axis=1).astype(np.int64)
    B_multi = int(M[:, -1].max()) // 12

    P_alloc = 96
    m_alloc = 2_048
    loads = rng.integers(1, 10_000, P_alloc).astype(np.int64)
    lt = int(loads.sum())
    q0 = -((-(m_alloc - P_alloc) * loads) // lt)
    np.maximum(q0, 1, out=q0)

    return [
        KernelBench(
            "probe_batch",
            lambda: K.probe_batch(P, m, curve_Bs),
            key=lambda out: out.tolist(),
        ),
        KernelBench(
            "probe_batch_early_exit",
            lambda: K.probe_batch(P, 512, exit_Bs),
            key=lambda out: out.tolist(),
        ),
        KernelBench(
            "min_parts",
            lambda: K.min_parts_batch(P, big_B),
            key=lambda parts: parts,
        ),
        KernelBench(
            "probe_cuts",
            lambda: K.probe_cuts(P, m_cuts, -(-total // m_cuts) + big_B),
            key=lambda cuts: None if cuts is None else cuts.tolist(),
        ),
        KernelBench(
            "weighted_cut",
            lambda: [K.weighted_cut_win(P, a, b, orients) for a, b in wins],
            key=lambda out: out,
        ),
        KernelBench(
            "relaxed_split",
            lambda: [K.relaxed_split_win(P, a, b, 64) for a, b in wins],
            key=lambda out: out,
        ),
        KernelBench(
            "alloc_tail",
            lambda: [K.alloc_tail(loads, q0, m_alloc) for _ in range(40)],
            key=lambda out: [q.tolist() for q in out],
        ),
        KernelBench(
            "probe_multi",
            lambda: [K.probe_multi(M, mm, B_multi) for mm in (4, 8, 16, 32)],
            key=lambda out: out,
        ),
    ]


def _time_backends(bench: KernelBench, backends: list[str]) -> dict[str, tuple[float, Any]]:
    """Median-of-N per backend, all backends paired within each repeat.

    Same estimator rationale as :func:`_time_pair`: rotating the backend
    order inside every repeat cancels ordering bias, and medians resist the
    scheduler-luck outliers a best-of floor rewards.
    """
    from repro.perf.config import use_perf_backend

    times: dict[str, list[float]] = {b: [] for b in backends}
    result: dict[str, Any] = {}
    for rep in range(bench.repeats):
        order = backends[rep % len(backends):] + backends[:rep % len(backends)]
        for backend in order:
            with use_perf_backend(backend):
                t0 = time.perf_counter()
                result[backend] = bench.call()
                times[backend].append(time.perf_counter() - t0)
    return {b: (statistics.median(times[b]), result[b]) for b in backends}


def run_kernels(profile: str, out_path: Path, min_speedup: float | None) -> int:
    """Per-backend kernel timings; cross-backend bit-identity is the gate."""
    from repro.perf.config import perf_backend
    from repro.perf.kernels import numba_available

    tiny = profile == "tiny"
    has_numba = numba_available()
    backends = ["reference", "numpy"] + (["numba"] if has_numba else [])
    print(f"# kernel registry: backends {backends} (default {perf_backend()!r})")
    if has_numba:
        # compile outside the timed region: @njit is lazy and the first call
        # per kernel pays the jit; a warmup pass keeps rows comparable
        from repro.perf.config import use_perf_backend

        with use_perf_backend("numba"):
            for bench in _registry_benches(True):
                bench.call()

    rows = []
    failures = []
    for bench in _registry_benches(tiny):
        timed_results = _time_backends(bench, backends)
        ref_s, ref = timed_results["reference"]
        ref_key = bench.key(ref)
        identical = all(bench.key(r) == ref_key for _, r in timed_results.values())
        if not identical:
            failures.append(bench.name)
        numpy_s = timed_results["numpy"][0]
        row: dict[str, Any] = {
            "name": bench.name,
            "reference_s": round(ref_s, 6),
            "numpy_s": round(numpy_s, 6),
            "numpy_speedup": round(ref_s / numpy_s, 3) if numpy_s > 0 else float("inf"),
            "numba_s": None,
            "numba_speedup": None,
            "identical": identical,
        }
        msg = (
            f"{bench.name:24s} ref {ref_s * 1e3:9.3f}ms  numpy {numpy_s * 1e3:9.3f}ms "
            f"({row['numpy_speedup']:6.2f}x)"
        )
        if has_numba:
            numba_s = timed_results["numba"][0]
            row["numba_s"] = round(numba_s, 6)
            row["numba_speedup"] = (
                round(ref_s / numba_s, 3) if numba_s > 0 else float("inf")
            )
            msg += f"  numba {numba_s * 1e3:9.3f}ms ({row['numba_speedup']:6.2f}x)"
        rows.append(row)
        print(f"{msg}  {'ok' if identical else 'MISMATCH'}")

    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py --kernels",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "numba_available": has_numba,
        "benches": rows,
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        print(f"FAIL: non-identical results: {', '.join(failures)}", file=sys.stderr)
        return 1
    if min_speedup is not None:
        fast = [r["name"] for r in rows if r["numpy_speedup"] >= min_speedup]
        if len(fast) < 3:
            print(
                f"FAIL: only {len(fast)} kernel(s) reach {min_speedup:.2f}x on the "
                f"numpy backend ({', '.join(fast) or 'none'}); need 3",
                file=sys.stderr,
            )
            return 1
        print(f"ok: {len(fast)} kernels at >= {min_speedup:.2f}x ({', '.join(fast)})")
    return 0


# ---------------------------------------------------------------------------
# parallel family

#: worker counts the parallel family sweeps (1 == the serial short-circuit)
PARALLEL_WORKERS = (1, 2, 4)


def _parallel_benches(tiny: bool) -> list[Bench]:
    """One bench per multicore backend, sized so dispatch has real work."""
    n_jag = 128 if tiny else 512
    A_jag = uniform(n_jag, 1.3, seed=0)
    n_hier = 128 if tiny else 512
    A_hier = peak(n_hier, seed=0)
    m = 16 if tiny else 64
    speeds = np.array([1.0, 1.0, 2.0, 3.0, 1.5, 1.0, 2.0, 1.0])
    # best-of-15: the benches are ms-scale, and on a single-CPU box every
    # row is the serial path timed twice — the measured dispatch overhead
    # of the enabled-but-serial path is <1%, so anything further from 1.0
    # is scheduler noise; deep best-of-N keeps the recorded ratios honest
    repeats = 15
    benches = [
        _partition_bench(
            f"par_jagged/{method}/m={m}", "parallel", A_jag, m, method, repeats
        )
        for method in ("JAG-PQ-HEUR", "JAG-M-HEUR")
    ]
    benches.append(
        Bench(
            name="par_jagged/jag_hetero/p=8",
            family="parallel",
            setup=lambda: PrefixSum2D(A_jag),
            call=lambda pref: jag_hetero(pref, speeds),
            key=lambda part: part.rects,
            repeats=repeats,
        )
    )
    benches += [
        _partition_bench(
            f"par_hier/{method}/m={m}", "parallel", A_hier, m, method, repeats
        )
        for method in ("HIER-RB", "HIER-RELAXED")
    ]
    # grid shipping: a whole (algorithm × m × seed) figure sweep through one
    # pmap_batched call — the amortized-dispatch shape of fig03/fig04
    from repro.experiments.figures import _avg_imbalance_grid

    n_grid = 48 if tiny else 96
    seeds = 3 if tiny else 5
    grid = [
        (f"HIER-RB-{v}", gm, {})
        for gm in ((6, 9) if tiny else (9, 16, 25))
        for v in ("LOAD", "DIST")
    ]
    benches.append(
        Bench(
            name="par_grid/hier_rb_sweep",
            family="parallel",
            setup=lambda: None,
            call=lambda _: _avg_imbalance_grid(("peak", n_grid), seeds, grid),
            key=lambda out: out,
            repeats=repeats,
        )
    )
    return benches


def run_parallel(profile: str, out_path: Path) -> int:
    """Time the parallel family at each worker count; identity is the gate.

    Worker rows record ``pooled``: whether dispatch actually engaged the
    pool.  On a single-CPU machine the layer short-circuits every
    configuration to serial (see :func:`repro.parallel.config.effective_workers`),
    so every row is honest serial time with ``pooled: false`` — the recorded
    speedups sit at ~1.0 instead of the round-trip slowdowns they used to.
    """
    from repro.parallel import effective_workers, shutdown_pool, use_parallel

    tiny = profile == "tiny"
    benches = _parallel_benches(tiny)
    cpu_count = os.cpu_count() or 1
    print(f"# parallel family: workers {PARALLEL_WORKERS}, cpu_count={cpu_count}")
    if cpu_count < 2:
        print("# NOTE: single-CPU machine — dispatch short-circuits to serial (pooled=false)")

    prev_min_cells = os.environ.get("REPRO_PARALLEL_MIN_CELLS")
    os.environ["REPRO_PARALLEL_MIN_CELLS"] = "0"  # always dispatch: we gate identity
    rows = []
    failures = []
    try:
        for bench in benches:
            per_workers: dict[str, dict[str, Any]] = {}
            identical = True
            serial_s = float("inf")
            ref_key = None
            # calibrate an inner-call loop so each timed sample covers
            # ~10 ms: the parallel benches are sub-ms to ms scale, where
            # single-core scheduler noise alone swings a one-call sample
            # by ±10% and no amount of best-of-N settles the ratio
            state = bench.setup()
            t0 = time.perf_counter()
            ref = bench.call(state)
            once = time.perf_counter() - t0
            inner = max(1, min(20, int(0.010 / max(once, 1e-9))))
            for w in PARALLEL_WORKERS:
                # interleave serial and worker samples one-for-one and
                # alternate which leg runs first: CPU availability drifts
                # over seconds, and the second leg of a pair sees slightly
                # worse cache/frequency state — either effect turns into a
                # systematic skew in rows whose pooled=false path is the
                # very same code.  The pool (when one spawns) is
                # persistent, so its one-time cost lands in a single
                # worker sample and drops out of the min.
                s_w = float("inf")
                best = float("inf")
                result = None
                pooled = False
                for rep in range(bench.repeats):
                    legs = ("serial", "worker") if rep % 2 == 0 else ("worker", "serial")
                    for leg in legs:
                        if leg == "serial":
                            state = bench.setup()
                            t0 = time.perf_counter()
                            for _ in range(inner):
                                ref = bench.call(state)
                            s_w = min(s_w, (time.perf_counter() - t0) / inner)
                        else:
                            with use_parallel(True, workers=w):
                                pooled = effective_workers() > 0
                                state = bench.setup()
                                t0 = time.perf_counter()
                                for _ in range(inner):
                                    result = bench.call(state)
                                best = min(best, (time.perf_counter() - t0) / inner)
                serial_s = min(serial_s, s_w)
                if ref_key is None:
                    ref_key = bench.key(ref)
                same = bench.key(result) == ref_key
                identical = identical and same
                per_workers[str(w)] = {
                    "time_s": round(best, 6),
                    "speedup": round(s_w / best, 3) if best > 0 else float("inf"),
                    "pooled": pooled,
                    "identical": same,
                }
            if not identical:
                failures.append(bench.name)
            rows.append(
                {
                    "name": bench.name,
                    "family": bench.family,
                    "serial_s": round(serial_s, 6),
                    "workers": per_workers,
                    "identical": identical,
                }
            )
            times = "  ".join(
                f"w={w}:{per_workers[str(w)]['time_s'] * 1e3:8.2f}ms"
                f"({per_workers[str(w)]['speedup']:.2f}x)"
                for w in PARALLEL_WORKERS
            )
            print(
                f"{bench.name:34s} serial {serial_s * 1e3:8.2f}ms  {times}  "
                f"{'ok' if identical else 'MISMATCH'}"
            )
    finally:
        shutdown_pool()
        if prev_min_cells is None:
            os.environ.pop("REPRO_PARALLEL_MIN_CELLS", None)
        else:
            os.environ["REPRO_PARALLEL_MIN_CELLS"] = prev_min_cells

    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py --parallel",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "workers_swept": list(PARALLEL_WORKERS),
        "benches": rows,
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        print(f"FAIL: non-identical results: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# sweep family


def _rects_key(part: Any) -> list[tuple[int, int, int, int]]:
    return sorted((r.r0, r.r1, r.c0, r.c1) for r in part.rects)


#: the paper's Fig. 7 comparison shape: orientation variants plus the
#: best-of entry, heuristics before exact solvers.  This is where the sweep
#: engine's warmth bites hardest — the best-of entries re-solve orientations
#: the single-orientation entries already solved, and the exact-hit short
#: circuit plus recorded witnesses make those re-solves nearly free, while
#: cold per-m calls pay each of them twice.
_SWEEP_TRIO = [
    "JAG-M-HEUR-HOR",
    "JAG-M-HEUR-VER",
    "JAG-M-HEUR",
    "JAG-M-OPT-HOR",
    "JAG-M-OPT-VER",
    "JAG-M-OPT",
]


def _sweep_configs(tiny: bool) -> list[tuple[str, np.ndarray, list[str], tuple[int, ...]]]:
    """(family, matrix, algorithms, m_values) per swept figure setting.

    ``sweep_fig7`` is the paper's Fig. 7 shape on a uniform instance (the
    full variant comparison); ``sweep_exact`` keeps only the exact-solver
    variants on a peak instance, so the aggregate isolates the warm-start
    machinery on the solver the paper's runtime story centers on.
    """
    exact_trio = ["JAG-M-OPT-HOR", "JAG-M-OPT-VER", "JAG-M-OPT"]
    if tiny:
        ms = (9, 16, 36)
        return [
            ("sweep_fig7", uniform(64, 1.3, seed=0), _SWEEP_TRIO, ms),
            ("sweep_exact", peak(64, seed=0), exact_trio, ms),
        ]
    ms = (16, 36, 64, 144)
    return [
        ("sweep_fig7", uniform(128, 1.3, seed=0), _SWEEP_TRIO, ms),
        ("sweep_exact", peak(128, seed=0), exact_trio, ms),
    ]


def run_sweep(profile: str, out_path: Path, min_speedup: float | None) -> int:
    """Whole-sweep warm starts vs per-m cold calls; identity is the gate."""
    import tempfile

    from repro.perf.counters import op_counters
    from repro.sweep import sweep, use_sweep

    tiny = profile == "tiny"
    repeats = 3 if tiny else 2
    rows = []
    families: dict[str, dict[str, float]] = {}
    failures = []
    cold_keys: dict[tuple[str, str, int], Any] = {}
    with use_perf(True):
        for fam, A, names, ms in _sweep_configs(tiny):
            warm_s = float("inf")
            res = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                out = sweep(A, names, ms)
                dt = time.perf_counter() - t0
                if dt < warm_s:
                    warm_s, res = dt, out
            assert res is not None
            cold_total = 0.0
            fam_identical = True
            for name in names:
                for m in sorted(set(ms), reverse=True):
                    cold_s = float("inf")
                    ref = None
                    for _ in range(repeats):
                        t0 = time.perf_counter()
                        # the cold baseline a user without the engine pays:
                        # one public call per (algorithm, m), fresh prefix
                        ref = partition_2d(A, m, name)
                        cold_s = min(cold_s, time.perf_counter() - t0)
                    assert ref is not None
                    cold_keys[(fam, name, m)] = _rects_key(ref)
                    identical = _rects_key(res[(name, m)]) == cold_keys[(fam, name, m)]
                    fam_identical = fam_identical and identical
                    if not identical:
                        failures.append(f"{fam}/{name}/m={m}")
                    cold_total += cold_s
                    rows.append(
                        {
                            "name": f"{fam}/{name}/m={m}",
                            "family": fam,
                            "cold_s": round(cold_s, 6),
                            "identical": identical,
                        }
                    )
                    print(
                        f"{fam}/{name}/m={m:<4d} cold {cold_s * 1e3:9.2f}ms  "
                        f"{'ok' if identical else 'MISMATCH'}"
                    )
            speedup = cold_total / warm_s if warm_s > 0 else float("inf")
            families[fam] = {
                "cold_total_s": round(cold_total, 6),
                "warm_sweep_s": round(warm_s, 6),
                "speedup": round(speedup, 3),
                "identical": fam_identical,
            }
            print(
                f"-- {fam:12s} cold total {cold_total * 1e3:9.2f}ms -> "
                f"sweep {warm_s * 1e3:9.2f}ms  {speedup:6.2f}x"
            )

    # warm-from-disk: a first sweep populates the persistent fact store, a
    # second run (fresh prefixes, facts only from disk) must be both faster
    # than the cold per-m baseline and bit-identical to it
    store_families: dict[str, dict[str, float]] = {}
    with use_perf(True), tempfile.TemporaryDirectory() as tmp:
        for fam, A, names, ms in _sweep_configs(tiny):
            spath = Path(tmp) / f"{fam}.json"
            t0 = time.perf_counter()
            sweep(A, names, ms, store=spath)
            populate_s = time.perf_counter() - t0
            disk_s = float("inf")
            res = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                out = sweep(A, names, ms, store=spath)
                dt = time.perf_counter() - t0
                if dt < disk_s:
                    disk_s, res = dt, out
            assert res is not None
            fam_identical = True
            for name in names:
                for m in sorted(set(ms)):
                    if _rects_key(res[(name, m)]) != cold_keys[(fam, name, m)]:
                        fam_identical = False
                        failures.append(f"store/{fam}/{name}/m={m}")
            cold_total = families[fam]["cold_total_s"]
            speedup = cold_total / disk_s if disk_s > 0 else float("inf")
            store_families[fam] = {
                "populate_s": round(populate_s, 6),
                "warm_disk_s": round(disk_s, 6),
                "cold_total_s": cold_total,
                "speedup": round(speedup, 3),
                "identical": fam_identical,
            }
            print(
                f"-- store {fam:12s} populate {populate_s * 1e3:9.2f}ms, "
                f"warm-from-disk {disk_s * 1e3:9.2f}ms vs cold "
                f"{cold_total * 1e3:9.2f}ms  {speedup:6.2f}x  "
                f"{'ok' if fam_identical else 'MISMATCH'}"
            )

    # hierarchical witness consumption: persisted node-decision facts must
    # remove cut-kernel work on a warm run (the op-counter drop is
    # deterministic) while the rectangles stay bit-identical
    hier_rows = []
    n_hier = 64 if tiny else 128
    m_hier = 16 if tiny else 64
    A_hier = peak(n_hier, seed=0)
    with use_perf(True), tempfile.TemporaryDirectory() as tmp:
        spath = Path(tmp) / "hier.json"
        for name in ("HIER-RB", "HIER-RELAXED"):
            with op_counters() as ops:
                ref = partition_2d(PrefixSum2D(A_hier), m_hier, name)
            cold_calls = int(ops.get("cut_calls", 0))
            with use_sweep(store=spath):
                partition_2d(PrefixSum2D(A_hier), m_hier, name)
            with use_sweep(store=spath):
                with op_counters() as ops:
                    warm = partition_2d(PrefixSum2D(A_hier), m_hier, name)
            warm_calls = int(ops.get("cut_calls", 0))
            identical = _rects_key(warm) == _rects_key(ref)
            dropped = warm_calls < cold_calls
            if not identical:
                failures.append(f"hier_witness/{name}")
            if not dropped:
                failures.append(f"hier_witness/{name} (no cut_calls drop)")
            hier_rows.append(
                {
                    "name": f"hier_witness/{name}/m={m_hier}",
                    "cold_cut_calls": cold_calls,
                    "warm_cut_calls": warm_calls,
                    "identical": identical and dropped,
                }
            )
            print(
                f"hier_witness/{name}/m={m_hier}  cut_calls {cold_calls} -> "
                f"{warm_calls}  {'ok' if identical and dropped else 'MISMATCH'}"
            )

    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py --sweep",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benches": rows,
        "families": families,
        "store_families": store_families,
        "hier_witnesses": hier_rows,
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        print(f"FAIL: non-identical results: {', '.join(failures)}", file=sys.stderr)
        return 1
    if min_speedup is not None:
        for fam, agg in families.items():
            if agg["speedup"] < min_speedup:
                print(
                    f"FAIL: {fam} sweep speedup {agg['speedup']:.2f}x "
                    f"< {min_speedup:.2f}x",
                    file=sys.stderr,
                )
                return 1
    return 0


# ---------------------------------------------------------------------------
# figure-farm family: cold vs warm vs interrupted-then-resumed raw store

#: fast subset of the experiment suite — covers the batched-grid path
#: (fig03/fig04), the use_sweep per-cell path (fig05, fig13), the cached
#: runtime metric (fig06), kwargs-scoped cells (fig09, ext3) and the
#: combined-stream digest (ext2); the slow PIC sweeps are left out so the
#: committed small-profile run stays minutes, not hours
FIGURE_BENCH_IDS = ("fig03", "fig04", "fig05", "fig06", "fig09", "fig13", "ext2", "ext3")


def run_figures(profile: str, out_path: Path, min_speedup: float | None) -> int:
    """Cold/warm/resume figure regeneration; CSV byte-identity is the gate."""
    import tempfile

    from repro.experiments import ALL_EXTENSIONS, ALL_FIGURES, get_scale
    from repro.experiments.rawstore import (
        InterruptingRawStore,
        RawStore,
        SimulatedInterrupt,
        use_raw_store,
    )

    runnable = {**ALL_FIGURES, **ALL_EXTENSIONS}
    sc = get_scale(profile)
    rows = []
    failures = []
    cold_total = 0.0
    warm_total = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        for fig in FIGURE_BENCH_IDS:
            fn = runnable[fig]
            cold_dir = Path(tmp) / f"{fig}-cold"
            resume_dir = Path(tmp) / f"{fig}-resume"

            store = RawStore(cold_dir)
            with use_raw_store(None, store=store):
                t0 = time.perf_counter()
                cold_csv = fn(sc).csv_bytes()
                cold_s = time.perf_counter() - t0
            cells = store.misses

            warm_s = float("inf")
            warm_csv = None
            warm_misses = 0
            for _ in range(3):
                store = RawStore(cold_dir)
                with use_raw_store(None, store=store):
                    t0 = time.perf_counter()
                    csv_bytes = fn(sc).csv_bytes()
                    dt = time.perf_counter() - t0
                warm_misses += store.misses
                if dt < warm_s:
                    warm_s, warm_csv = dt, csv_bytes
            identical = warm_csv == cold_csv and warm_misses == 0

            # kill the run after half its cell writes land, then resume
            # over the same directory: the flushed half must be reused and
            # the final CSV must match the uninterrupted run byte for byte
            interrupted = InterruptingRawStore(
                resume_dir, abort_after=max(1, cells // 2)
            )
            aborted = False
            try:
                with use_raw_store(None, store=interrupted):
                    fn(sc)
            except SimulatedInterrupt:
                aborted = True
            resumer = RawStore(resume_dir)
            with use_raw_store(None, store=resumer):
                t0 = time.perf_counter()
                resume_csv = fn(sc).csv_bytes()
                resume_s = time.perf_counter() - t0
            if fig == "fig06":
                # wall-clock cells: fresh timings in resume_dir legitimately
                # differ from cold_dir's, so the contract is that a warm
                # replay over the resumed store reproduces the resumed run
                replay = RawStore(resume_dir)
                with use_raw_store(None, store=replay):
                    replay_csv = fn(sc).csv_bytes()
                resume_identical = (
                    aborted
                    and resumer.hits > 0
                    and replay.misses == 0
                    and replay_csv == resume_csv
                )
            else:
                resume_identical = (
                    aborted and resume_csv == cold_csv and resumer.hits > 0
                )

            if not identical:
                failures.append(f"{fig} (warm)")
            if not resume_identical:
                failures.append(f"{fig} (resume)")
            cold_total += cold_s
            warm_total += warm_s
            speedup = cold_s / warm_s if warm_s > 0 else float("inf")
            rows.append(
                {
                    "name": fig,
                    "family": "figures",
                    "cells": cells,
                    "cold_s": round(cold_s, 6),
                    "warm_s": round(warm_s, 6),
                    "resume_s": round(resume_s, 6),
                    "speedup": round(speedup, 3),
                    "resumed_hits": resumer.hits,
                    "identical": identical and resume_identical,
                }
            )
            print(
                f"{fig:6s} cells {cells:3d}  cold {cold_s * 1e3:9.2f}ms -> warm "
                f"{warm_s * 1e3:8.2f}ms ({speedup:6.2f}x)  resume "
                f"{resume_s * 1e3:8.2f}ms  "
                f"{'ok' if identical and resume_identical else 'MISMATCH'}"
            )

    agg_speedup = cold_total / warm_total if warm_total > 0 else float("inf")
    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py --figures",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benches": rows,
        "families": {
            "figures": {
                "cold_total_s": round(cold_total, 6),
                "warm_total_s": round(warm_total, 6),
                "speedup": round(agg_speedup, 3),
                "identical": not failures,
            }
        },
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    print(
        f"-- figures aggregate cold {cold_total * 1e3:9.2f}ms -> warm "
        f"{warm_total * 1e3:9.2f}ms  {agg_speedup:6.2f}x"
    )
    if failures:
        print(f"FAIL: non-identical CSVs: {', '.join(failures)}", file=sys.stderr)
        return 1
    if min_speedup is not None and agg_speedup < min_speedup:
        print(
            f"FAIL: warm figure regeneration {agg_speedup:.2f}x < "
            f"{min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


# ---------------------------------------------------------------------------
# sparse-substrate family (--sparse)


def _sparse_cases(tiny: bool) -> list[tuple[str, int, Callable[[], Any], Callable[[], Any], bool]]:
    """``(name, n, dense_builder, sparse_builder, mem_gate)`` per instance.

    ``mem_gate`` rows enforce the acceptance bound: the CSR substrate's
    resident bytes must stay at or below 10% of the dense Γ bytes.  The
    SLAC projection is denser (several-percent fill), so it records its
    ratio without gating it — the gate is the spmv story.
    """
    from repro.instances import slac_instance
    from repro.instances.mesh.project import slac_sparse
    from repro.instances.spmv import spmv_instance, spmv_sparse

    if tiny:
        return [
            (
                "spmv_rmat",
                512,
                lambda: spmv_instance(512, model="rmat", scale=12, edge_factor=2, seed=0),
                lambda: spmv_sparse(512, model="rmat", scale=12, edge_factor=2, seed=0),
                True,
            ),
            (
                "spmv_mesh",
                256,
                lambda: spmv_instance(256, model="mesh", mesh_size=256),
                lambda: spmv_sparse(256, model="mesh", mesh_size=256),
                True,
            ),
        ]
    return [
        (
            "spmv_rmat",
            4096,
            lambda: spmv_instance(4096, model="rmat", scale=14, edge_factor=8, seed=0),
            lambda: spmv_sparse(4096, model="rmat", scale=14, edge_factor=8, seed=0),
            True,
        ),
        (
            "spmv_mesh",
            4096,
            lambda: spmv_instance(4096, model="mesh", mesh_size=512),
            lambda: spmv_sparse(4096, model="mesh", mesh_size=512),
            True,
        ),
        (
            "slac",
            4096,
            lambda: slac_instance(4096),
            lambda: slac_sparse(4096),
            False,
        ),
    ]


def run_sparse(profile: str, out_path: Path) -> int:
    """Sparse vs dense substrate: memory, wall-clock, and bit-identity.

    Three row groups: per-instance *substrate* rows (build peak + resident
    bytes + query timings, every query asserted equal), per-(instance,
    algorithm) *solver* rows (partition wall-clock on both substrates,
    rectangles asserted bit-identical), and one ``--scale large`` raw-store
    cell resolved cold then warm on the sparse substrate.
    """
    import tempfile
    import tracemalloc

    from repro.core.sparse import SparsePrefix2D
    from repro.experiments import get_scale
    from repro.experiments.figures import _imb_cell
    from repro.experiments.rawstore import RawStore, digest_prefix, use_raw_store
    from repro.sweep.store import instance_digest

    tiny = profile == "tiny"
    m_solver = 9 if tiny else 64
    solver_algos = ("JAG-M-HEUR", "HIER-RB", "RECT-NICOL")
    rng = np.random.default_rng(99)
    sub_rows = []
    solver_rows = []
    failures = []

    with use_perf(True):
        for name, n, dense_builder, sparse_builder, mem_gate in _sparse_cases(tiny):
            tracemalloc.start()
            try:
                t0 = time.perf_counter()
                sub = sparse_builder()
                build_sparse_s = time.perf_counter() - t0
                _, build_peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            t0 = time.perf_counter()
            A = dense_builder()
            pref = PrefixSum2D(A)
            build_dense_s = time.perf_counter() - t0
            dense_bytes = pref.nbytes

            is_sparse = isinstance(sub, SparsePrefix2D)
            identical = is_sparse and instance_digest(sub) == instance_digest(pref)

            # query workload: random rectangles + random stripe projections
            k = 128 if tiny else 512
            rr = np.sort(rng.integers(0, n + 1, size=(k, 2)), axis=1)
            cc = np.sort(rng.integers(0, n + 1, size=(k, 2)), axis=1)
            coords = np.column_stack([rr, cc])
            bands = np.sort(rng.integers(0, n + 1, size=(16, 2)), axis=1)
            bands = [(int(lo), int(hi)) for lo, hi in bands if hi > lo]

            t0 = time.perf_counter()
            loads_sparse = sub.rect_loads(coords)
            proj_sparse = [sub.axis_prefix(1, lo, hi, reuse=False) for lo, hi in bands]
            query_sparse_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            loads_dense = pref.rect_loads(coords)
            proj_dense = [pref.axis_prefix(1, lo, hi, reuse=False) for lo, hi in bands]
            query_dense_s = time.perf_counter() - t0
            identical = (
                identical
                and bool(np.array_equal(loads_sparse, loads_dense))
                and all(np.array_equal(s, d) for s, d in zip(proj_sparse, proj_dense))
            )
            mem_ratio = sub.nbytes / dense_bytes
            gate_ok = (not mem_gate) or mem_ratio <= 0.10
            if not identical:
                failures.append(f"substrate/{name} (queries)")
            if not gate_ok:
                failures.append(f"substrate/{name} (memory {mem_ratio:.3f} > 0.10)")
            sub_rows.append(
                {
                    "name": f"substrate/{name}",
                    "n": n,
                    "nnz": int(sub.nnz) if is_sparse else None,
                    "density": round(float(sub.density), 6) if is_sparse else None,
                    "sparse_nbytes": int(sub.nbytes),
                    "dense_gamma_bytes": int(dense_bytes),
                    "mem_ratio": round(mem_ratio, 6),
                    "mem_gated": mem_gate,
                    "build_sparse_s": round(build_sparse_s, 6),
                    "build_peak_bytes": int(build_peak),
                    "build_dense_s": round(build_dense_s, 6),
                    "query_sparse_s": round(query_sparse_s, 6),
                    "query_dense_s": round(query_dense_s, 6),
                    "identical": identical and gate_ok,
                }
            )
            print(
                f"substrate/{name:10s} n={n:5d} nnz={sub.nnz if is_sparse else '-':>8} "
                f"mem {sub.nbytes / 2**20:7.2f}MiB / {dense_bytes / 2**20:7.2f}MiB "
                f"({mem_ratio:6.1%})  build {build_sparse_s:6.2f}s/{build_dense_s:6.2f}s  "
                f"{'ok' if identical and gate_ok else 'MISMATCH'}"
            )

            for algo in solver_algos:
                t0 = time.perf_counter()
                part_dense = partition_2d(pref, m_solver, algo)
                solve_dense_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                part_sparse = partition_2d(sub, m_solver, algo)
                solve_sparse_s = time.perf_counter() - t0
                same = _rects_key(part_sparse) == _rects_key(part_dense)
                if not same:
                    failures.append(f"solver/{name}/{algo}")
                solver_rows.append(
                    {
                        "name": f"solver/{name}/{algo}/m={m_solver}",
                        "sparse_s": round(solve_sparse_s, 6),
                        "dense_s": round(solve_dense_s, 6),
                        "identical": same,
                    }
                )
                print(
                    f"solver/{name}/{algo}/m={m_solver}  sparse "
                    f"{solve_sparse_s * 1e3:9.2f}ms  dense {solve_dense_s * 1e3:9.2f}ms  "
                    f"{'ok' if same else 'MISMATCH'}"
                )

        # one `--scale large` cell end-to-end through the raw store: the
        # sparse-substrate instance the profile exists for, resolved cold
        # (computed, flushed) then warm (served from disk, no recompute)
        sc = get_scale("large")
        from repro.instances.spmv import spmv_sparse as _spmv_sparse

        t0 = time.perf_counter()
        pref_large = _spmv_sparse(sc.n_spmv, model="rmat", seed=0)
        build_large_s = time.perf_counter() - t0
        dig = digest_prefix(pref_large)
        with tempfile.TemporaryDirectory() as tmp:
            cold_store = RawStore(Path(tmp) / "large")
            with use_raw_store(None, store=cold_store):
                t0 = time.perf_counter()
                v_cold = _imb_cell(sc.name, dig, "JAG-M-HEUR", 16, pref_large)
                cold_s = time.perf_counter() - t0
            warm_store = RawStore(Path(tmp) / "large")
            with use_raw_store(None, store=warm_store):
                t0 = time.perf_counter()
                v_warm = _imb_cell(sc.name, dig, "JAG-M-HEUR", 16, pref_large)
                warm_s = time.perf_counter() - t0
        cell_ok = (
            isinstance(pref_large, SparsePrefix2D)
            and v_warm == v_cold
            and warm_store.misses == 0
            and warm_store.hits >= 1
        )
        if not cell_ok:
            failures.append("raw_store/large_cell")
        large_cell = {
            "name": "raw_store/large/spmv_rmat/JAG-M-HEUR/m=16",
            "n": sc.n_spmv,
            "scale": sc.name,
            "build_s": round(build_large_s, 6),
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "value": float(v_cold),
            "identical": cell_ok,
        }
        print(
            f"raw_store/large n={sc.n_spmv} cold {cold_s * 1e3:9.2f}ms -> warm "
            f"{warm_s * 1e3:8.2f}ms  {'ok' if cell_ok else 'MISMATCH'}"
        )

    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py --sparse",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "substrates": sub_rows,
        "solvers": solver_rows,
        "raw_store_cell": large_cell,
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# dynamic family: repartitioning policies over a PIC snapshot stream


def _dynamic_stream(tiny: bool):
    """(scale, [(iteration, PrefixSum2D), ...]) of the PIC scenario driver."""
    from repro.experiments.scale import get_scale
    from repro.instances.pic import PICMagDataset

    sc = get_scale("tiny" if tiny else "small")
    ds = PICMagDataset(
        sc.pic, period=sc.pic_period, max_iteration=sc.pic_max_iteration
    )
    return sc, list(ds.stream())


def _counting_partitioner(solver):
    """Wrap a solver; records per-call wall seconds and rectangle keys."""
    seconds: list[float] = []
    rects: list[Any] = []

    def run(pref, m):
        t0 = time.perf_counter()
        part = solver(pref, m)
        seconds.append(time.perf_counter() - t0)
        rects.append(_rects_key(part))
        return part

    return run, seconds, rects


def run_dynamic(profile: str, out_path: Path) -> int:
    """Policy comparison + warm-started solve gates over the PIC stream."""
    import tempfile

    from repro.dynamic import (
        EveryK,
        ImbalanceTriggered,
        IncrementalJagged,
        MigrationBudgeted,
        WarmStarted,
    )
    from repro.perf.counters import op_counters
    from repro.runtime import BSPSimulator
    from repro.sweep import SweepStore

    tiny = profile == "tiny"
    sc, snaps = _dynamic_stream(tiny)
    m = sc.m_fig11
    failures: list[str] = []

    def heur(pref, m):
        return partition_2d(pref, m, "JAG-M-HEUR")

    # -- phase 1: policy comparison, gated on determinism and on the
    # extracted EveryK matching the legacy repartition_every knob ----------
    legacy = BSPSimulator(m, heur, repartition_every=1).run(
        snaps, steps_per_snapshot=sc.pic_period
    )
    policy_rows = []
    policies = [
        ("every-1", lambda: EveryK(1)),
        ("static", lambda: EveryK(0)),
        ("imbalance-0.1", lambda: ImbalanceTriggered(0.1)),
        ("budgeted-h5", lambda: MigrationBudgeted()),
        ("incremental-0.1", lambda: IncrementalJagged(m, threshold=0.1)),
    ]
    for pname, make in policies:
        runs = []
        for _ in range(2):  # two full runs: the determinism gate
            solver, solve_s, _rects = _counting_partitioner(heur)
            t0 = time.perf_counter()
            rep = BSPSimulator(m, solver, policy=make()).run(
                snaps, steps_per_snapshot=sc.pic_period
            )
            wall = time.perf_counter() - t0
            runs.append((rep, solve_s, wall))
        (rep, solve_s, wall), (rep2, _, _) = runs
        deterministic = rep.steps == rep2.steps
        identical = deterministic
        if pname == "every-1":
            identical = identical and rep.steps == legacy.steps
            if rep.steps != legacy.steps:
                failures.append("policy/every-1 (legacy mismatch)")
        if not deterministic:
            failures.append(f"policy/{pname} (non-deterministic)")
        policy_rows.append(
            {
                "name": f"policy/{pname}",
                "policy": pname,
                "m": m,
                "snapshots": len(snaps),
                "sim_total_s": rep.total_time,
                "sim_compute_s": rep.compute_time,
                "sim_comm_s": rep.comm_time,
                "sim_migration_s": rep.migration_time,
                "repartitions": rep.repartitions,
                "mean_imbalance": rep.mean_imbalance,
                "solves": len(solve_s),
                "solver_wall_s": round(sum(solve_s), 6),
                "wall_s": round(wall, 6),
                "identical": identical,
            }
        )
        print(
            f"policy/{pname:16s} sim {rep.total_time:10.3f}s  "
            f"repart {rep.repartitions:3d}/{len(snaps)}  "
            f"solves {len(solve_s):3d}  wall {wall * 1e3:8.1f}ms  "
            f"{'ok' if identical else 'MISMATCH'}"
        )

    # -- phase 2: warm-started solves over a persistent sweep store -------
    # the same stream is run three times with JAG-M-OPT: cold (no engine),
    # populating a fresh store, then warm from disk.  Gates: the warm run
    # seeds from the store (hits > 0), its op count drops below the populate
    # run (deterministic), and every per-snapshot partition is bit-identical
    # across all three runs.
    m_warm = 6 if tiny else 16

    def opt(pref, mm):
        return partition_2d(pref, mm, "JAG-M-OPT")

    warm_doc: dict[str, Any]
    with use_perf(True), tempfile.TemporaryDirectory() as tmp:
        spath = Path(tmp) / "dynamic-store.json"

        solver, cold_s, cold_rects = _counting_partitioner(opt)
        with op_counters() as ops:
            BSPSimulator(m_warm, solver).run(snaps)
        cold_ops = sum(ops.values())

        solver, pop_s, pop_rects = _counting_partitioner(opt)
        with op_counters() as ops:
            BSPSimulator(
                m_warm, solver, policy=WarmStarted(store=SweepStore(spath))
            ).run(snaps)
        pop_ops = sum(ops.values())

        store = SweepStore(spath)  # fresh object: counts this run's seeding
        solver, warm_s, warm_rects = _counting_partitioner(opt)
        with op_counters() as ops:
            BSPSimulator(m_warm, solver, policy=WarmStarted(store=store)).run(
                snaps
            )
        warm_ops = sum(ops.values())

        identical = cold_rects == pop_rects == warm_rects
        if not identical:
            failures.append("warm/rects (not bit-identical to cold)")
        if store.seeded == 0:
            failures.append("warm/store (no seeded instances on warm run)")
        if not warm_ops < pop_ops:
            failures.append("warm/ops (no op-count drop on warm run)")
        warm_doc = {
            "name": f"warm/JAG-M-OPT/m={m_warm}",
            "algo": "JAG-M-OPT",
            "m": m_warm,
            "snapshots": len(snaps),
            "store_seeded": store.seeded,
            "cold_ops": cold_ops,
            "populate_ops": pop_ops,
            "warm_ops": warm_ops,
            "cold_solver_s": round(sum(cold_s), 6),
            "populate_solver_s": round(sum(pop_s), 6),
            "warm_solver_s": round(sum(warm_s), 6),
            "per_snapshot_cold_s": [round(t, 6) for t in cold_s],
            "per_snapshot_warm_s": [round(t, 6) for t in warm_s],
            "identical": identical
            and store.seeded > 0
            and warm_ops < pop_ops,
        }
        print(
            f"warm/JAG-M-OPT/m={m_warm}  seeded {store.seeded}  "
            f"ops {pop_ops} -> {warm_ops}  solver "
            f"{sum(pop_s) * 1e3:8.1f}ms -> {sum(warm_s) * 1e3:8.1f}ms  "
            f"{'ok' if warm_doc['identical'] else 'MISMATCH'}"
        )

    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py --dynamic",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "policies": policy_rows,
        "warm": warm_doc,
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# committed-baseline identity gate


def check_identity(root: Path = REPO_ROOT) -> int:
    """Scan committed ``BENCH_*.json`` for any ``identical: false`` row."""
    bad: list[str] = []

    def scan(node: Any, where: str) -> None:
        if isinstance(node, dict):
            if node.get("identical") is False:
                bad.append(f"{where} ({node.get('name', '?')})")
            for key, val in node.items():
                scan(val, f"{where}.{key}")
        elif isinstance(node, list):
            for i, val in enumerate(node):
                scan(val, f"{where}[{i}]")

    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 2
    for path in files:
        scan(json.loads(path.read_text()), path.name)
    if bad:
        for entry in bad:
            print(f"FAIL: identical=false at {entry}", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} baseline(s), every row identical")
    return 0


# ---------------------------------------------------------------------------
# driver


def run(profile: str, out_path: Path, min_speedup: float | None) -> int:
    tiny = profile == "tiny"
    benches = _kernel_benches(tiny) + _figure_benches(tiny)

    rows = []
    failures = []
    for bench in benches:
        before_s, after_s, ref, opt = _time_pair(bench)
        identical = bench.key(ref) == bench.key(opt)
        if not identical:
            failures.append(bench.name)
        speedup = before_s / after_s if after_s > 0 else float("inf")
        rows.append(
            {
                "name": bench.name,
                "family": bench.family,
                "before_s": round(before_s, 6),
                "after_s": round(after_s, 6),
                "speedup": round(speedup, 3),
                "identical": identical,
            }
        )
        print(
            f"{bench.name:42s} {before_s * 1e3:9.2f}ms -> {after_s * 1e3:9.2f}ms "
            f"{speedup:6.2f}x  {'ok' if identical else 'MISMATCH'}"
        )

    families: dict[str, dict[str, float]] = {}
    for fam in sorted({r["family"] for r in rows}):
        fam_rows = [r for r in rows if r["family"] == fam]
        b = sum(r["before_s"] for r in fam_rows)
        a = sum(r["after_s"] for r in fam_rows)
        families[fam] = {
            "before_s": round(b, 6),
            "after_s": round(a, 6),
            "speedup": round(b / a, 3) if a > 0 else float("inf"),
        }
        print(f"-- {fam:15s} aggregate {b * 1e3:9.2f}ms -> {a * 1e3:9.2f}ms  {b / a:6.2f}x")

    doc = {
        "schema": 1,
        "generated_by": "benchmarks/perf_regress.py",
        "profile": profile,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benches": rows,
        "families": families,
        "all_identical": not failures,
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")

    if failures:
        print(f"FAIL: non-identical results: {', '.join(failures)}", file=sys.stderr)
        return 1
    if min_speedup is not None:
        for fam in ("jagged", "hierarchical"):
            got = families[fam]["speedup"]
            if got < min_speedup:
                print(
                    f"FAIL: {fam} aggregate speedup {got:.2f}x < {min_speedup:.2f}x",
                    file=sys.stderr,
                )
                return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--profile",
        choices=("small", "tiny"),
        default="small",
        help="instance sizes: 'small' (default, the committed baseline) or "
        "'tiny' (CI smoke; seconds)",
    )
    ap.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_core.json at the repo root, "
        "BENCH_parallel.json with --parallel)",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the jagged and hierarchical figure aggregates reach "
        "this speedup (e.g. 2.0)",
    )
    ap.add_argument(
        "--parallel",
        action="store_true",
        help="run the parallel family instead: serial vs the repro.parallel "
        "layer at 1/2/4 workers, asserting bit-identical rectangles",
    )
    ap.add_argument(
        "--sweep",
        action="store_true",
        help="run the sweep family instead: repro.sweep.sweep() m-sweeps vs "
        "per-m cold calls, asserting bit-identical rectangles per cell",
    )
    ap.add_argument(
        "--kernels",
        action="store_true",
        help="run the kernel-registry family instead: every repro.perf.kernels "
        "kernel timed per backend (reference/numpy/numba), asserting "
        "bit-identical results across backends",
    )
    ap.add_argument(
        "--figures",
        action="store_true",
        help="run the figure-farm family instead: a fast figure subset "
        "regenerated cold / warm / interrupted-then-resumed against the raw "
        "store, asserting byte-identical CSVs",
    )
    ap.add_argument(
        "--sparse",
        action="store_true",
        help="run the sparse-substrate family instead: CSR vs dense Γ memory "
        "and wall-clock on the large-profile instances, asserting "
        "bit-identical queries and partitions across substrates",
    )
    ap.add_argument(
        "--dynamic",
        action="store_true",
        help="run the dynamic family instead: repartitioning policies over "
        "the PIC snapshot stream (determinism + legacy-knob identity gates) "
        "plus warm-started per-snapshot solves from a persistent sweep store "
        "(seed/op-drop/bit-identity gates)",
    )
    ap.add_argument(
        "--check-identity",
        action="store_true",
        help="scan committed BENCH_*.json baselines and fail on any "
        "`identical: false` row (no benches are run)",
    )
    args = ap.parse_args(argv)
    if args.check_identity:
        return check_identity()
    if args.dynamic:
        out = args.out or REPO_ROOT / "BENCH_dynamic.json"
        return run_dynamic(args.profile, out)
    if args.sparse:
        out = args.out or REPO_ROOT / "BENCH_sparse.json"
        return run_sparse(args.profile, out)
    if args.kernels:
        out = args.out or REPO_ROOT / "BENCH_kernels.json"
        return run_kernels(args.profile, out, args.min_speedup)
    if args.parallel:
        out = args.out or REPO_ROOT / "BENCH_parallel.json"
        return run_parallel(args.profile, out)
    if args.sweep:
        out = args.out or REPO_ROOT / "BENCH_sweep.json"
        return run_sweep(args.profile, out, args.min_speedup)
    if args.figures:
        out = args.out or REPO_ROOT / "BENCH_FIGURES.json"
        return run_figures(args.profile, out, args.min_speedup)
    out = args.out or REPO_ROOT / "BENCH_core.json"
    return run(args.profile, out, args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
