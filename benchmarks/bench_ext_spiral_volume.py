"""Benchmarks for the extensions: spiral partitions and 3D volumes.

These cover the §3.4 scheme the paper only analyzes (spiral) and the
"rectangular volumes" the introduction motivates (3D), quantifying their
cost against the 2D reference algorithms.
"""

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.instances import peak
from repro.spiral import spiral_relaxed
from repro.volume import PrefixSum3D, vol_hier_rb, vol_jag_m_heur, vol_uniform


@pytest.fixture(scope="module")
def instance_2d():
    return PrefixSum2D(peak(256, seed=0))


@pytest.fixture(scope="module")
def instance_3d():
    i, j, k = np.meshgrid(*[np.arange(48)] * 3, indexing="ij")
    A = (
        1000
        + 5000 * np.exp(-(((i - 14) ** 2 + (j - 30) ** 2 + (k - 24) ** 2) / 90))
    ).astype(np.int64)
    return PrefixSum3D(A)


def test_spiral_relaxed(benchmark, instance_2d):
    part = benchmark(spiral_relaxed, instance_2d, 100)
    assert part.is_valid()


@pytest.mark.parametrize(
    "algo",
    [vol_uniform, vol_jag_m_heur, vol_hier_rb],
    ids=["vol-uniform", "vol-jag-m-heur", "vol-hier-rb"],
)
def test_volume_algorithms(benchmark, instance_3d, algo):
    part = benchmark(algo, instance_3d, 64)
    assert part.is_valid()


def test_volume_quality_ordering(instance_3d):
    """Imbalance: load-aware 3D methods beat the uniform grid."""
    uni = vol_uniform(instance_3d, 64).imbalance(instance_3d)
    jag = vol_jag_m_heur(instance_3d, 64).imbalance(instance_3d)
    rb = vol_hier_rb(instance_3d, 64).imbalance(instance_3d)
    print(f"\nvol imbalance: uniform={uni:.4f} jag-m={jag:.4f} hier-rb={rb:.4f}")
    assert jag < uni and rb < uni
