"""Benchmark for the migration-aware dynamic repartitioning extension (§5).

Measures the imbalance/migration trade-off of :class:`IncrementalJagged`
against always-full repartitioning on a drifting workload, and the cost of a
refinement step vs a full JAG-M-HEUR run.
"""

import numpy as np
import pytest

from repro.core.metrics import migration_volume
from repro.core.prefix import PrefixSum2D
from repro.dynamic import IncrementalJagged, refine_jagged
from repro.jagged import jag_m_heur


def drifting_snapshots(n=128, steps=10, speed=2.0):
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    out = []
    for k in range(steps):
        cx, cy = 20 + speed * k, 20 + speed * 1.3 * k
        A = 100 + (
            900 * np.exp(-(((ii - cx) ** 2 + (jj - cy) ** 2) / (2 * 14.0**2)))
        ).astype(np.int64)
        out.append(PrefixSum2D(A.astype(np.int64)))
    return out


@pytest.fixture(scope="module")
def snaps():
    return drifting_snapshots()


def test_refine_step(benchmark, snaps):
    part = jag_m_heur(snaps[0], 64)
    benchmark(refine_jagged, part, snaps[1])


def test_full_repartition_step(benchmark, snaps):
    benchmark(jag_m_heur, snaps[1], 64)


def test_migration_tradeoff(benchmark, snaps):
    def run():
        rows = []
        for thr in (0.0, 0.1, 0.3):
            inc = IncrementalJagged(64, threshold=thr)
            prev = None
            migration = 0
            worst = 0.0
            for pref in snaps:
                p = inc.step(pref)
                if prev is not None:
                    migration += migration_volume(prev, p, pref)
                prev = p
                worst = max(worst, p.imbalance(pref))
            rows.append((thr, migration, worst, inc.full_repartitions))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nthreshold  migration  worst-imb  full-repartitions")
    for thr, mig, worst, fulls in rows:
        print(f"{thr:9.2f}  {mig:9,d}  {worst:9.4f}  {fulls:17d}")
    # migration decreases monotonically with the threshold
    migs = [r[1] for r in rows]
    assert migs[0] >= migs[1] >= migs[2]
