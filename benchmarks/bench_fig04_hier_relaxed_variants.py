"""Figure 4: HIER-RELAXED variants (LOAD/DIST/HOR/VER) on Multi-peak.

Paper: 512×512 multi-peak (3 peaks), 10 instances; HIER-RELAXED-LOAD is the
best variant overall.
"""

import numpy as np

from repro.experiments.figures import fig04_hier_relaxed_variants

from .conftest import run_figure


def test_fig04(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig04_hier_relaxed_variants, scale, results_dir)
    means = {k: np.mean([y for _, y in v]) for k, v in res.series.items()}
    assert means["HIER-RELAXED-LOAD"] <= min(means.values()) + 0.05
