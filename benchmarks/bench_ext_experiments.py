"""Benches for the extension experiments (paper §5 follow-through).

ext1 — communication volume per heuristic;
ext2 — migration/imbalance trade-off of incremental repartitioning;
ext3 — JAG-M-HEUR stripe-count policies (√m vs Theorem 4 vs auto);
ext4 — 3D volume partitioning.
"""

import numpy as np

from repro.experiments.extensions import (
    ext1_comm_volume,
    ext2_migration_tradeoff,
    ext3_stripe_autotuning,
    ext4_volume_3d,
)

from .conftest import run_figure


def test_ext1_comm_volume(benchmark, scale, results_dir):
    res = run_figure(benchmark, ext1_comm_volume, scale, results_dir)
    # grid/stripe structures keep communication near the uniform grid's
    # (they implicitly minimize boundary, §1); hierarchical trees may pay a
    # few times more but stay within one order of magnitude
    by_m = {}
    for name, pts in res.series.items():
        for x, y in pts:
            by_m.setdefault(x, {})[name] = y
    for m, row in by_m.items():
        base = row["RECT-UNIFORM"]
        assert row["JAG-M-HEUR"] <= 2.0 * base + 1, (m, row)
        assert row["JAG-PQ-HEUR"] <= 2.0 * base + 1, (m, row)
        assert max(row.values()) <= 10.0 * base + 1, (m, row)


def test_ext2_migration(benchmark, scale, results_dir):
    res = run_figure(benchmark, ext2_migration_tradeoff, scale, results_dir)
    mig = dict(res.series["migrated fraction"])
    # higher threshold => no more migration
    thresholds = sorted(mig)
    for a, b in zip(thresholds, thresholds[1:]):
        assert mig[b] <= mig[a] + 1e-9


def test_ext3_stripe_policies(benchmark, scale, results_dir):
    res = run_figure(benchmark, ext3_stripe_autotuning, scale, results_dir)
    sqrt_ = dict(res.series["sqrt"])
    auto = dict(res.series["auto"])
    # the auto sweep contains sqrt(m), so it can never lose
    for m in sqrt_:
        assert auto[m] <= sqrt_[m] + 1e-9
    assert np.mean(list(auto.values())) <= np.mean(list(sqrt_.values())) + 1e-12


def test_ext4_volume(benchmark, scale, results_dir):
    res = run_figure(benchmark, ext4_volume_3d, scale, results_dir)
    means = {k: np.mean([y for _, y in v]) for k, v in res.series.items()}
    assert means["VOL-JAG-M-HEUR"] <= means["VOL-UNIFORM"] + 1e-9
    assert means["VOL-HIER-RB"] <= means["VOL-UNIFORM"] + 1e-9
