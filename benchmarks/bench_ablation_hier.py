"""Ablation: HIER-RELAXED node optimization.

The (cut, j) node optimization is vectorized in this reproduction — for a
fixed processor split the optimal cut straddles the balance point, so one
``searchsorted`` over all m-1 targets evaluates every split (DESIGN.md §6).
This bench compares it against the straightforward per-j loop the complexity
analysis of the paper implies, and measures the effect of the balanced
tie-break on solution quality.
"""

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.hierarchical import hier_rb, hier_relaxed
from repro.hierarchical.cuts import best_relaxed_split
from repro.instances import multi_peak


def best_relaxed_split_loop(bp: np.ndarray, m: int):
    """Reference per-j loop implementation of the node rule."""
    L = len(bp) - 1
    if L < 2 or m < 2:
        return None
    total = int(bp[-1])
    best = None
    for j in range(1, m):
        target = total * (j / m)
        c = int(np.searchsorted(bp, target, side="right")) - 1
        for cand in (c, c + 1):
            cc = min(max(cand, 1), L - 1)
            l1 = int(bp[cc])
            v = max(l1 / j, (total - l1) / (m - j))
            if best is None or v < best[2]:
                best = (cc, j, v)
    return best


@pytest.fixture(scope="module")
def node_prefix():
    vals = np.random.default_rng(0).integers(1, 1000, 4096)
    bp = np.zeros(4097, dtype=np.int64)
    np.cumsum(vals, out=bp[1:])
    return bp


@pytest.mark.parametrize(
    "impl",
    [best_relaxed_split, best_relaxed_split_loop],
    ids=["vectorized", "per-j-loop"],
)
def test_node_split(benchmark, node_prefix, impl):
    out = benchmark(impl, node_prefix, 1000)
    assert out is not None


def test_split_values_agree(node_prefix):
    for m in (2, 7, 64, 501):
        a = best_relaxed_split(node_prefix, m)
        b = best_relaxed_split_loop(node_prefix, m)
        # same optimal node value (cut/j may differ among ties)
        assert a[2] == pytest.approx(b[2], rel=1e-3)


@pytest.mark.parametrize("algo", [hier_rb, hier_relaxed], ids=["hier-rb", "hier-relaxed"])
def test_hier_end_to_end(benchmark, algo):
    pref = PrefixSum2D(multi_peak(256, seed=0))
    benchmark(algo, pref, 256)
