"""Figure 11: hierarchical methods across the PIC-MAG run at fixed m.

Paper: m = 400; documents the erratic behaviour of HIER-RELAXED over the
course of the dynamic application while HIER-RB stays comparatively flat.
"""

import numpy as np

from repro.experiments.figures import fig11_hier_vs_iteration

from .conftest import run_figure


def test_fig11(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig11_hier_vs_iteration, scale, results_dir)
    assert set(res.series) == {"HIER-RB", "HIER-RELAXED"}
    for pts in res.series.values():
        assert all(np.isfinite(y) for _, y in pts)
