"""Figure 8: jagged methods across the PIC-MAG run at fixed m.

Paper: m = 6,400; the P×Q partitions sit at a flat ~18% imbalance while the
m-way heuristic varies between ~2.5% and ~16%, staying below throughout.
"""

import numpy as np

from repro.experiments.figures import fig08_jagged_vs_iteration

from .conftest import run_figure


def test_fig08(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig08_jagged_vs_iteration, scale, results_dir)
    pq = dict(res.series["JAG-PQ-HEUR"])
    mw = dict(res.series["JAG-M-HEUR"])
    # m-way below P×Q on aggregate over the whole run
    assert np.mean(list(mw.values())) <= np.mean(list(pq.values())) + 1e-9
    # P×Q optimal ~= P×Q heuristic (almost no room for improvement)
    if "JAG-PQ-OPT" in res.series:
        po = dict(res.series["JAG-PQ-OPT"])
        for it in po:
            assert po[it] <= pq[it] + 1e-9
