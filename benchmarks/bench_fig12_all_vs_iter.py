"""Figure 12: all heuristics across the PIC-MAG run at large fixed m.

Paper: m = 9,216; RECT-UNIFORM 30–45%, RECT-NICOL ≈ JAG-PQ-HEUR ≈ 28%,
HIER-RB 20–30%, HIER-RELAXED mostly below 10%, JAG-M-HEUR best in all but
two iterations.
"""

import numpy as np

from repro.experiments.figures import fig12_all_vs_iteration

from .conftest import run_figure


def test_fig12(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig12_all_vs_iteration, scale, results_dir)
    means = {k: np.mean([y for _, y in v]) for k, v in res.series.items()}
    # the load-oblivious baseline is the worst on aggregate
    assert means["RECT-UNIFORM"] >= max(means.values()) - 1e-9
    # the paper's proposed heuristic beats the classical stripe methods
    assert means["JAG-M-HEUR"] <= means["JAG-PQ-HEUR"] + 1e-9
    assert means["JAG-M-HEUR"] <= means["RECT-NICOL"] + 1e-9
