"""Figure 3: HIER-RB variants (LOAD/DIST/HOR/VER) on the Peak instance.

Paper: 1024×1024 Peak, m up to 10,000; imbalance grows with m and
HIER-RB-LOAD achieves the overall best balance.
"""

import numpy as np

from repro.experiments.figures import fig03_hier_rb_variants

from .conftest import run_figure


def test_fig03(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig03_hier_rb_variants, scale, results_dir)
    # shape check: -LOAD is the best variant on aggregate
    means = {k: np.mean([y for _, y in v]) for k, v in res.series.items()}
    assert means["HIER-RB-LOAD"] <= min(means.values()) + 0.05
