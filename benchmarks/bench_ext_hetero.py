"""Benchmarks for the heterogeneous-speed extension.

Timings of the ordered-hetero 1D solver and the speed-grouped jagged 2D
partitioner, plus a quality check against the speed-blind baseline.
"""

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.instances import peak
from repro.jagged import hetero_makespan_2d, jag_hetero, jag_m_heur
from repro.oned.hetero import partition_hetero


@pytest.fixture(scope="module")
def cluster():
    rng = np.random.default_rng(0)
    speeds = np.concatenate([np.full(8, 2.5), np.full(24, 1.0)])
    rng.shuffle(speeds)
    return speeds


def test_hetero_1d(benchmark, cluster):
    vals = np.random.default_rng(1).integers(1, 1000, 20_000)
    benchmark(partition_hetero, vals, cluster)


def test_hetero_2d(benchmark, cluster):
    pref = PrefixSum2D(peak(256, seed=0))
    part = benchmark(jag_hetero, pref, cluster)
    assert part.is_valid()


def test_hetero_quality(cluster):
    pref = PrefixSum2D(peak(256, seed=0))
    speeds = np.asarray(cluster, dtype=np.float64)
    aware = jag_hetero(pref, speeds).meta["makespan"]
    blind = hetero_makespan_2d(jag_m_heur(pref, len(speeds)), pref, speeds)
    ideal = pref.total / speeds.sum()
    print(
        f"\nmakespan: aware={aware:,.0f} blind={blind:,.0f} ideal={ideal:,.0f} "
        f"(aware is {aware / ideal - 1:.1%} over ideal)"
    )
    assert aware < blind
