"""Figure 5: HIER-RELAXED variants on the Diagonal instance.

Paper: 4096×4096 diagonal; shows the convergence behaviour of the -HOR/-VER
variants towards -LOAD as m grows.
"""

from repro.experiments.figures import fig05_hier_relaxed_diagonal

from .conftest import run_figure


def test_fig05(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig05_hier_relaxed_diagonal, scale, results_dir)
    assert set(res.series) == {
        "HIER-RELAXED-LOAD",
        "HIER-RELAXED-DIST",
        "HIER-RELAXED-HOR",
        "HIER-RELAXED-VER",
    }
