"""Figure 13: all heuristics on the PIC-MAG snapshot at iteration 20,000.

Paper: the RECT-UNIFORM / RECT-NICOL / JAG-PQ-HEUR / HIER-RB conclusions
carry over from Figure 12; JAG-M-HEUR varies with m (stripe-count artefact)
and HIER-RELAXED generally leads in this test.
"""

import numpy as np

from repro.experiments.figures import fig13_all_vs_m

from .conftest import run_figure


def test_fig13(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig13_all_vs_m, scale, results_dir)
    means = {k: np.mean([y for _, y in v]) for k, v in res.series.items()}
    # load-aware methods beat the uniform baseline on aggregate
    for name in ("RECT-NICOL", "JAG-PQ-HEUR", "JAG-M-HEUR", "HIER-RB", "HIER-RELAXED"):
        assert means[name] <= means["RECT-UNIFORM"] + 1e-9, name
