"""Figure 10: HIER-RB vs HIER-RELAXED on the Diagonal instance.

Paper: 4096×4096 diagonal; "It is clear that HIER-RELAXED leads to a better
load balance than HIER-RB."
"""

import numpy as np

from repro.experiments.figures import fig10_hier_diagonal

from .conftest import run_figure


def test_fig10(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig10_hier_diagonal, scale, results_dir)
    rb = dict(res.series["HIER-RB"])
    rx = dict(res.series["HIER-RELAXED"])
    assert np.mean(list(rx.values())) <= np.mean(list(rb.values())) + 1e-9
