"""Figure 6: execution time of the algorithms on Uniform Δ=1.2.

Two views:

* ``test_fig06_series`` — the full sweep over m (the paper's chart), printed
  and saved as CSV;
* ``test_runtime_<algo>`` — per-algorithm pytest-benchmark entries at a fixed
  m, so the pytest-benchmark comparison table itself mirrors the figure.

Paper ordering to verify: RECT-UNIFORM ≪ HIER-RB < JAG-*-HEUR ≈ RECT-NICOL <
HIER-RELAXED ≪ JAG-PQ-OPT ≪ JAG-M-OPT.
"""

import pytest

from repro.core.prefix import PrefixSum2D
from repro.core.registry import ALGORITHMS
from repro.experiments.figures import fig06_runtime
from repro.instances import uniform

from .conftest import run_figure


def test_fig06_series(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig06_runtime, scale, results_dir)
    # Shape: at the largest m, RECT-UNIFORM (trivial output) is fastest and
    # the exact jagged algorithms are the slowest — checked on aggregate to
    # stay robust against wall-clock noise at millisecond scales.
    by_m = {}
    for name, pts in res.series.items():
        for x, y in pts:
            by_m.setdefault(x, {})[name] = y
    top_m = max(by_m)
    times = by_m[top_m]
    assert times["RECT-UNIFORM"] == min(times.values()), (top_m, times)
    if "JAG-PQ-OPT" in times:
        heur_max = max(times[n] for n in times if "OPT" not in n)
        assert times["JAG-PQ-OPT"] >= 0.5 * heur_max, (top_m, times)


@pytest.fixture(scope="module")
def fig06_instance(scale):
    A = uniform(scale.n_uniform, 1.2, seed=0)
    return PrefixSum2D(A), min(1024, max(scale.m_values))


@pytest.mark.parametrize(
    "algo",
    [
        "RECT-UNIFORM",
        "RECT-NICOL",
        "JAG-PQ-HEUR",
        "JAG-M-HEUR",
        "HIER-RB",
        "HIER-RELAXED",
        "JAG-PQ-OPT",
    ],
)
def test_runtime_algorithms(benchmark, fig06_instance, algo):
    pref, m = fig06_instance
    benchmark(ALGORITHMS[algo], pref, m)


def test_runtime_jag_m_opt(benchmark, fig06_instance, scale):
    """JAG-M-OPT at its capped m (the paper stops at 1,000 processors)."""
    pref, _ = fig06_instance
    m = min(scale.m_cap_m_opt, 100)
    benchmark.pedantic(ALGORITHMS["JAG-M-OPT"], args=(pref, m), rounds=1, iterations=1)
