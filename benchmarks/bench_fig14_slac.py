"""Figure 14: all heuristics on the sparse SLAC mesh instance.

Paper: "Due to the sparsity of the instance, most algorithms get a high load
imbalance.  Only the hierarchical partitioning algorithms manage to keep the
imbalance low and HIER-RELAXED gets a lower imbalance than HIER-RB."
"""

import numpy as np

from repro.experiments.figures import fig14_slac

from .conftest import run_figure


def test_fig14(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig14_slac, scale, results_dir)
    means = {k: np.mean([y for _, y in v]) for k, v in res.series.items()}
    # hierarchical methods dominate the stripe-based ones on the sparse mesh
    hier_best = min(means["HIER-RB"], means["HIER-RELAXED"])
    for name in ("RECT-UNIFORM", "RECT-NICOL", "JAG-PQ-HEUR"):
        assert hier_best <= means[name] + 1e-9, (name, means)
    assert means["HIER-RELAXED"] <= means["HIER-RB"] + 1e-9
