"""Ablation: the 1D partitioning layer.

* Exact algorithms head-to-head (Nicol vs NicolPlus vs integer bisection vs
  the Manne–Olstad DP) — quantifies the paper's claim that bounding
  techniques yield large speedups ([8], §2.2).
* Probe implementations: plain binary search vs the Han et al. slicing
  technique.
* Heuristics for context (DirectCut, refined DC, recursive bisection).
"""

import numpy as np
import pytest

from repro.oned import (
    bisect_bottleneck,
    direct_cut,
    direct_cut_refined,
    dp_bottleneck,
    nicol_bottleneck,
    nicol_plus_bottleneck,
    probe,
    probe_sliced,
    recursive_bisection,
)

N = 20_000
M = 256


@pytest.fixture(scope="module")
def big_prefix():
    vals = np.random.default_rng(0).integers(1, 1000, N)
    P = np.zeros(N + 1, dtype=np.int64)
    np.cumsum(vals, out=P[1:])
    return P


@pytest.mark.parametrize(
    "algo",
    [nicol_bottleneck, nicol_plus_bottleneck, bisect_bottleneck],
    ids=["nicol", "nicolplus", "bisect"],
)
def test_exact_1d(benchmark, big_prefix, algo):
    benchmark(algo, big_prefix, M)


def test_exact_1d_dp(benchmark, big_prefix):
    """The DP oracle on a smaller slice (O(n·m) would take minutes at N)."""
    benchmark.pedantic(
        dp_bottleneck, args=(big_prefix[:2001].copy(), 32), rounds=1, iterations=2
    )


@pytest.mark.parametrize(
    "heur",
    [direct_cut, direct_cut_refined, recursive_bisection],
    ids=["directcut", "dc-refined", "recursive-bisection"],
)
def test_heuristic_1d(benchmark, big_prefix, heur):
    benchmark(heur, big_prefix, M)


@pytest.mark.parametrize("impl", [probe, probe_sliced], ids=["probe", "probe-sliced"])
def test_probe_impls(benchmark, big_prefix, impl):
    total = int(big_prefix[-1])
    B = total // M + 1000  # feasible: full greedy walk
    assert impl(big_prefix, M, B)
    benchmark(impl, big_prefix, M, B)
