"""Figure 9: impact of the stripe count P on JAG-M-HEUR, with the Theorem 3
worst-case guarantee.

Paper: 514×514 Uniform Δ=1.2, m=800; the measured imbalance follows the
shape of the guarantee and shows steps synchronized with integral n1/P.
"""

from repro.experiments.figures import fig09_stripe_count

from .conftest import run_figure


def test_fig09(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig09_stripe_count, scale, results_dir)
    meas = dict(res.series["JAG-M-HEUR variable P"])
    guar = dict(res.series["m-way jagged guarantee (Thm 3)"])
    # the heuristic never exceeds its worst-case guarantee
    for P, v in meas.items():
        assert v <= guar[P] + 1e-9, (P, v, guar[P])
    # and the guarantee curve is eventually increasing in P (the right arm of
    # the U-shape analyzed in Theorem 4)
    tail = sorted(guar)[-3:]
    assert guar[tail[0]] <= guar[tail[-1]]
