"""Shared machinery for the benchmark suite.

Every ``bench_figNN`` module regenerates one evaluation figure of the paper:
it runs the corresponding experiment (workload generation, parameter sweep,
baselines) under pytest-benchmark, prints the same series the paper plots,
and writes a CSV under ``benchmarks/results/``.

Scale profile: set ``REPRO_SCALE=paper`` for the paper's instance sizes
(slow); the default ``small`` profile preserves the qualitative shapes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import FigureResult
from repro.experiments.scale import current_scale

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for figure cells (CSVs are byte-identical for any N)",
    )


@pytest.fixture(scope="session", autouse=True)
def _parallel_jobs(request):
    """Mirror of ``repro-experiments --jobs``: scope the parallel layer to the run."""
    jobs = request.config.getoption("--jobs")
    if jobs <= 1:
        yield
        return
    from repro.parallel.config import use_parallel
    from repro.parallel.pool import shutdown_pool

    with use_parallel(True, workers=jobs):
        yield
    shutdown_pool()


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_figure(benchmark, fig_fn, scale, results_dir) -> FigureResult:
    """Run one figure reproduction exactly once under the benchmark timer,
    print its table, and persist the CSV."""
    result = benchmark.pedantic(fig_fn, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.to_table())
    result.to_csv(results_dir / f"{result.fig}.csv")
    return result
