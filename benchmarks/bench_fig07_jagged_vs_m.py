"""Figure 7: jagged methods on the PIC-MAG snapshot at iteration 30,000.

Paper claims to verify: JAG-PQ-HEUR ≈ JAG-PQ-OPT ("almost no room for
improvement"); JAG-M-HEUR always at least as good as the P×Q methods; the
optimal m-way partition far better still (≈1% vs ≈6% at 1,000 processors).
"""

import numpy as np

from repro.experiments.figures import fig07_jagged_vs_m

from .conftest import run_figure


def test_fig07(benchmark, scale, results_dir):
    res = run_figure(benchmark, fig07_jagged_vs_m, scale, results_dir)
    pq_h = dict(res.series["JAG-PQ-HEUR"])
    m_h = dict(res.series["JAG-M-HEUR"])
    # m-way heuristic never meaningfully worse than the P×Q heuristic, and
    # better on aggregate (the paper's Figure 7 claim)
    for m in m_h:
        assert m_h[m] <= pq_h[m] + 0.02, (m, m_h[m], pq_h[m])
    assert np.mean(list(m_h.values())) <= np.mean(list(pq_h.values())) + 1e-9
    # the optimal m-way partition dominates everything where computed
    for m, y in res.series["JAG-M-OPT"]:
        assert y <= m_h[m] + 1e-9
        assert y <= dict(res.series["JAG-PQ-OPT"]).get(m, np.inf) + 1e-9
    # P×Q optimal never worse than P×Q heuristic
    for m, y in res.series["JAG-PQ-OPT"]:
        assert y <= pq_h[m] + 1e-9
