"""Microbenchmarks of the core substrate: prefix sums, loads, validation.

The paper's cost model assumes O(1) rectangle loads through the Γ prefix
array and an O(m²) partition validity test (§2.1); these benches keep those
costs honest.
"""

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.instances import uniform
from repro.rectilinear import rect_uniform


@pytest.fixture(scope="module")
def big_matrix():
    return uniform(1024, 1.3, seed=0)


@pytest.fixture(scope="module")
def big_prefix(big_matrix):
    return PrefixSum2D(big_matrix)


def test_prefix_construction(benchmark, big_matrix):
    benchmark(PrefixSum2D, big_matrix)


def test_rect_load_queries(benchmark, big_prefix):
    rng = np.random.default_rng(1)
    coords = np.sort(rng.integers(0, 1025, (1000, 2, 2)), axis=2)

    def queries():
        total = 0
        for (r0, r1), (c0, c1) in coords:
            total += big_prefix.load(r0, r1, c0, c1)
        return total

    benchmark(queries)


def test_partition_loads_vectorized(benchmark, big_prefix):
    part = rect_uniform(big_prefix, 1024)
    benchmark(part.loads, big_prefix)


@pytest.mark.parametrize("method", ["paint", "pairwise"])
def test_validation(benchmark, big_prefix, method):
    part = rect_uniform(big_prefix, 256)
    benchmark(part.validate, method=method)
