"""Ablation: JAG-M-OPT formulations.

The paper computes optimal m-way jagged partitions with a dynamic program
(15 minutes at m=961 on a 512×512 matrix in C++).  This reproduction adds an
equivalent exact bottleneck-bisection over a minimum-processor DP
(DESIGN.md §6).  This bench quantifies the gap on an instance where both
run, and verifies they return the same optimum.
"""

import pytest

from repro.core.prefix import PrefixSum2D
from repro.instances import uniform
from repro.jagged.m_opt import jag_m_opt_bottleneck, jag_m_opt_dp_bottleneck


@pytest.fixture(scope="module")
def small_instance():
    return PrefixSum2D(uniform(24, 1.4, seed=1)), 12


def test_mopt_bisection(benchmark, small_instance):
    pref, m = small_instance
    benchmark(jag_m_opt_bottleneck, pref, m)


def test_mopt_paper_dp(benchmark, small_instance):
    pref, m = small_instance
    got = benchmark.pedantic(
        jag_m_opt_dp_bottleneck, args=(pref, m), rounds=1, iterations=1
    )
    assert got == jag_m_opt_bottleneck(pref, m)


def test_mopt_bisection_medium(benchmark):
    """The bisection formulation at a scale the paper DP cannot touch."""
    pref = PrefixSum2D(uniform(128, 1.2, seed=2))
    benchmark.pedantic(jag_m_opt_bottleneck, args=(pref, 100), rounds=1, iterations=1)
