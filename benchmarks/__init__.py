"""Benchmark suite regenerating every evaluation figure of the paper."""
